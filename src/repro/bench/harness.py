"""The benchmark runner behind ``python -m repro.cli bench``.

One run builds the synthetic world once, then for each dataset scale
links the full four-dataset corpus (warmup passes first, then the timed
repeats), aggregating the per-stage wall-clock record every
``LinkingResult`` already carries — candidate generation, coherence
graph, tree-cover solve, grouping, disambiguation.  On top of the
per-stage view it measures:

* **coherence comparison** — the batched (``E @ E.T``) concept-concept
  similarity path against the retained scalar per-pair reference, at the
  largest scale, verifying the two produce identical graphs (the
  acceptance gate for the vectorised hot path);
* **service throughput** — documents/second through a warm
  :class:`repro.service.LinkingService` worker pool, with the
  cross-request LRU cache counters (candidate memo, similarity pair
  cache, alias fuzzy memo) captured into the record;
* **peak RSS** and an environment fingerprint, so records from
  different machines are never silently compared as equals.
"""

from __future__ import annotations

import inspect
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.bench.load import LoadConfig
from repro.bench.schema import REPORT_KIND, SCHEMA_VERSION, summarize
from repro.core.coherence import build_coherence_graph
from repro.core.config import TenetConfig
from repro.core.linker import LinkingContext, TenetLinker
from repro.datasets.benchmarks import build_benchmark_suite
from repro.eval.timing import aggregate_stage_seconds

Echo = Optional[Callable[[str], None]]


@dataclass(frozen=True)
class BenchConfig:
    """Knobs of one benchmark run."""

    scales: Tuple[float, ...] = (0.25, 0.5, 1.0)
    repeats: int = 3
    warmup: int = 1
    seed: int = 7
    service_workers: int = 4
    scalar_baseline: bool = True
    # When set, add a deadline-mode pass: every document is linked with
    # this per-request deadline through a warm service, measuring the
    # degraded-path latency and the cooperative-cancellation counters.
    deadline_seconds: Optional[float] = None
    # When set, add a traced pass: every document is linked with a
    # request-scoped trace attached and the per-stage span statistics
    # (plus the span-vs-stage_seconds parity delta) land in the record.
    trace: bool = False
    # When set, add a load pass: boot the HTTP server in-process on a
    # free port and drive the closed- or open-loop generator against it,
    # recording goodput vs. shed rate and the latency percentiles (the
    # `load` block; see repro.bench.load).
    load: Optional["LoadConfig"] = None
    # Cluster pass: shard linking across worker *processes* sharing one
    # snapshot artifact, measuring docs/s at 1 worker and at
    # ``service_workers`` workers plus byte-parity of every result
    # payload against the single-process engine (the `cluster` block).
    cluster: bool = False
    # Routing pass: link the largest-scale corpus once through the exact
    # pipeline and once through the cover-mode router, recording how many
    # documents took the fast path, the hot-stage (tree_cover +
    # disambiguation) seconds of each, and the full-vs-routed F1 parity.
    # ``routing_tolerance`` is the quality gate: the pass reports
    # ``parity.ok = false`` (and ``bench compare`` fails) when any F1
    # drifts further than this.
    routing: bool = True
    routing_tolerance: float = 0.005
    # Session pass: feed the largest-scale documents through streaming
    # sessions in deterministic K-chunk splits, measuring per-increment
    # latency against a full relink of the accumulated prefix, and gate
    # on final-state parity with one-shot linking (byte-identical in
    # "full" mode; within ``session_tolerance`` F1 in "scoped" mode,
    # where the dirty-region re-solve is scoped).  The `session` block.
    session: bool = False
    session_chunks: int = 4
    session_mode: str = "full"
    session_tolerance: float = 0.02
    label: str = ""

    def __post_init__(self) -> None:
        if not self.scales:
            raise ValueError("scales must be non-empty")
        if any(s <= 0 for s in self.scales):
            raise ValueError(f"scales must be positive, got {self.scales}")
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if self.service_workers < 1:
            raise ValueError("service_workers must be >= 1")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be > 0")
        if self.routing_tolerance < 0:
            raise ValueError(
                f"routing_tolerance must be >= 0, got {self.routing_tolerance}"
            )
        if self.session_chunks < 2:
            raise ValueError(
                f"session_chunks must be >= 2, got {self.session_chunks}"
            )
        if self.session_mode not in ("full", "scoped"):
            raise ValueError(
                f"session_mode must be 'full' or 'scoped', "
                f"got {self.session_mode!r}"
            )
        if self.session_tolerance < 0:
            raise ValueError(
                f"session_tolerance must be >= 0, got {self.session_tolerance}"
            )

    @classmethod
    def quick(cls) -> "BenchConfig":
        """The CI smoke profile: small scales, one repeat, no warmup."""
        return cls(scales=(0.1, 0.3), repeats=1, warmup=0, service_workers=2)


def git_rev(default: str = "local") -> str:
    """Short git revision of the working tree (env/``default`` fallback)."""
    env_rev = os.environ.get("BENCH_REV")
    if env_rev:
        return env_rev
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return default
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else default


def default_report_name(rev: Optional[str] = None) -> str:
    return f"BENCH_{rev or git_rev()}.json"


def _env_fingerprint() -> Dict[str, object]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
    }


def _peak_rss_kb() -> Optional[int]:
    """Peak resident set size in KiB (None where unsupported)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss is bytes
        peak //= 1024
    return int(peak)


def _coherence_kwargs(config: TenetConfig) -> Dict[str, object]:
    """The coherence-graph knobs exactly as the linker passes them."""
    return {
        "predicate_similarity_scale": config.predicate_similarity_scale,
        "prior_distance_floor": config.prior_distance_floor,
        "coherence_prior_blend": config.coherence_prior_blend,
        "prior_distance_curve": config.prior_distance_curve,
        "max_neighbours": config.coherence_max_neighbours,
    }


def _graphs_match(a, b, tolerance: float = 1e-9) -> bool:
    """Same edge set with weights within *tolerance*."""
    def edge_map(graph) -> Dict[Tuple[str, str], float]:
        edges = {}
        for u, v, w in graph.edges():
            ru, rv = repr(u), repr(v)
            edges[(ru, rv) if ru <= rv else (rv, ru)] = w
        return edges

    left, right = edge_map(a.graph), edge_map(b.graph)
    if left.keys() != right.keys():
        return False
    return all(abs(left[key] - right[key]) <= tolerance for key in left)


def _measure_scale(
    linker: TenetLinker,
    scale: float,
    texts: List[str],
    repeats: int,
    warmup: int,
) -> Dict[str, object]:
    for _ in range(warmup):
        for text in texts:
            linker.link(text)

    records: List[Dict[str, float]] = []
    graph = {
        "mentions": 0,
        "candidate_nodes": 0,
        "nodes": 0,
        "edges": 0,
        "total_weight": 0.0,
        "max_degree": 0,
        "cover_edges": 0,
    }
    words = 0
    started = time.perf_counter()
    for run in range(repeats):
        for text in texts:
            diagnostics = linker.link_detailed(text)
            records.append(dict(diagnostics.stage_seconds))
            if run == 0:
                coherence = diagnostics.coherence
                graph["mentions"] += coherence.mention_count
                graph["candidate_nodes"] += coherence.concept_node_count
                graph["nodes"] += coherence.graph.node_count
                graph["edges"] += coherence.graph.edge_count
                graph["total_weight"] += coherence.graph.total_weight()
                graph["max_degree"] = max(
                    graph["max_degree"], coherence.graph.max_degree()
                )
                graph["cover_edges"] += diagnostics.cover_edge_count
                words += diagnostics.extraction.word_count
    wall = time.perf_counter() - started
    graph["total_weight"] = round(graph["total_weight"], 6)

    stages = {
        name: summarize(values)
        for name, values in sorted(aggregate_stage_seconds(records).items())
    }
    return {
        "scale": scale,
        "documents": len(texts),
        "words": words,
        "runs": repeats,
        "wall_seconds": wall,
        "documents_per_second": (len(texts) * repeats) / wall if wall else None,
        "stages": stages,
        "graph": graph,
    }


def _coherence_comparison(
    linker: TenetLinker,
    scale: float,
    texts: List[str],
    repeats: int,
) -> Optional[Dict[str, object]]:
    """Batched vs. scalar concept-edge construction at one scale.

    Returns ``None`` when the installed ``build_coherence_graph`` has no
    ``similarity_mode`` knob (pre-vectorisation trees), so old and new
    revisions can both run the harness and their records stay comparable.
    """
    if "similarity_mode" not in inspect.signature(build_coherence_graph).parameters:
        return None
    kwargs = _coherence_kwargs(linker.config)
    inputs = []
    for text in texts:
        extraction = linker.pipeline.extract(text)
        inputs.append(linker.generator.generate(extraction).by_mention)

    def best_pass(mode: str) -> float:
        best = float("inf")
        for _ in range(max(repeats, 1)):
            started = time.perf_counter()
            for by_mention in inputs:
                build_coherence_graph(
                    by_mention, linker.similarity, similarity_mode=mode, **kwargs
                )
            best = min(best, time.perf_counter() - started)
        return best

    parity = all(
        _graphs_match(
            build_coherence_graph(
                by_mention, linker.similarity, similarity_mode="batch", **kwargs
            ),
            build_coherence_graph(
                by_mention, linker.similarity, similarity_mode="scalar", **kwargs
            ),
        )
        for by_mention in inputs
    )
    batch = best_pass("batch")
    scalar = best_pass("scalar")
    return {
        "scale": scale,
        "documents": len(inputs),
        "batch_seconds": batch,
        "scalar_seconds": scalar,
        "speedup": scalar / batch if batch > 0 else None,
        "parity": parity,
    }


def _service_throughput(
    context: LinkingContext,
    linker_config: TenetConfig,
    scale: float,
    texts: List[str],
    workers: int,
) -> Dict[str, object]:
    from repro.service import LinkingService, ServiceConfig
    from repro.service.schema import BatchLinkRequest, LinkRequest

    requests = tuple(
        LinkRequest(text=text, request_id=f"bench-{i}")
        for i, text in enumerate(texts)
    )
    with LinkingService(
        context, ServiceConfig(workers=workers), linker_config
    ) as service:
        started = time.perf_counter()
        responses = service.link_batch(BatchLinkRequest(requests))
        wall = time.perf_counter() - started
        errors = sum(1 for r in responses.responses if r.error is not None)
        snapshot = service.snapshot()
    latency = snapshot.get("latencies", {}).get("latency.link", {})
    return {
        "scale": scale,
        "documents": len(texts),
        "workers": workers,
        "wall_seconds": wall,
        "documents_per_second": len(texts) / wall if wall else None,
        "errors": errors,
        "latency": {
            key: latency.get(key)
            for key in (
                "count",
                "mean_seconds",
                "p50_seconds",
                "p90_seconds",
                "p99_seconds",
                "max_seconds",
            )
        },
        "caches": snapshot.get("caches", {}),
    }


def _cluster_mode(
    context: LinkingContext,
    linker_config: TenetConfig,
    scale: float,
    texts: List[str],
    processes: int,
    seed: int,
    snapshot_path: Optional[Union[str, Path]],
    say: Callable[[str], None],
) -> Dict[str, object]:
    """The ``cluster`` bench block: docs/s per worker-process count plus
    byte-parity of the result payloads against the single-process engine.

    Runs the corpus through a :class:`~repro.service.cluster.ClusterService`
    at 1 worker and at *processes* workers, both booted from one shared
    snapshot store (*snapshot_path* when the bench run has one, else an
    ephemeral store reused across both boots).  ``scaling.speedup`` is
    the 1-to-N docs/s ratio CI gates on; on a single-core runner it will
    hover near 1.0 — the near-linear expectation only holds with at
    least one core per worker.
    """
    import shutil
    import tempfile

    from repro.service import (
        LinkingService,
        ServiceConfig,
        create_cluster_service,
    )
    from repro.service.schema import BatchLinkRequest, LinkRequest

    requests = tuple(
        LinkRequest(text=text, request_id=f"bench-{i}")
        for i, text in enumerate(texts)
    )

    def canonical(responses) -> List[str]:
        return [
            json.dumps(response.result, sort_keys=True)
            for response in responses.responses
        ]

    say("cluster pass: single-process reference ...")
    with LinkingService(
        context, ServiceConfig(workers=1), linker_config
    ) as single:
        reference = canonical(single.link_batch(BatchLinkRequest(requests)))

    owned: Optional[str] = None
    root: Union[str, Path, None] = snapshot_path
    if root is None:
        owned = tempfile.mkdtemp(prefix="tenet-bench-cluster-")
        root = owned
    runs: List[Dict[str, object]] = []
    total_mismatches = 0
    try:
        for workers in sorted({1, processes}):
            say(f"cluster pass: {workers} worker process(es) ...")
            service = create_cluster_service(
                processes=workers,
                snapshot_path=root,
                seed=seed,
                linker_config=linker_config,
            )
            try:
                started = time.perf_counter()
                responses = service.link_batch(BatchLinkRequest(requests))
                wall = time.perf_counter() - started
                stats = service.cluster_stats()
            finally:
                service.close()
            mismatches = sum(
                1 for got, want in zip(canonical(responses), reference)
                if got != want
            )
            total_mismatches += mismatches
            runs.append({
                "workers": workers,
                "wall_seconds": wall,
                "documents_per_second": len(texts) / wall if wall else None,
                "errors": sum(
                    1 for r in responses.responses if r.error is not None
                ),
                "parity_mismatches": mismatches,
                "deaths": stats["deaths"],
                "respawns": stats["respawns"],
                "dispatch": stats["dispatch"],
            })
    finally:
        if owned is not None:
            shutil.rmtree(owned, ignore_errors=True)

    baseline = runs[0]
    scaled = runs[-1]
    speedup = None
    if baseline["documents_per_second"] and scaled["documents_per_second"]:
        speedup = (
            scaled["documents_per_second"] / baseline["documents_per_second"]
        )
    return {
        "scale": scale,
        "documents": len(texts),
        "processes": processes,
        "runs": runs,
        "scaling": {
            "baseline_workers": baseline["workers"],
            "workers": scaled["workers"],
            "speedup": speedup,
        },
        "parity": {
            "reference": "single-process",
            "mismatches": total_mismatches,
            "ok": total_mismatches == 0,
        },
    }


def _deadline_mode(
    context: LinkingContext,
    linker_config: TenetConfig,
    scale: float,
    texts: List[str],
    workers: int,
    deadline_seconds: float,
) -> Dict[str, object]:
    """Degraded-path latency under a per-request deadline.

    Every document is linked through a warm service whose default
    timeout is *deadline_seconds*; requests that blow the budget abort
    cooperatively at the next stage checkpoint and fall back to the
    prior-only answer.  The block records how many requests degraded,
    which stage they aborted in, and the latency of the degraded path
    (wall clock from submission to the salvaged response).
    """
    from repro.service import LinkingService, ServiceConfig
    from repro.service.schema import LinkRequest

    service_config = ServiceConfig(
        workers=workers, default_timeout_seconds=deadline_seconds
    )
    degraded_latencies: List[float] = []
    completed_latencies: List[float] = []
    errors = 0
    started = time.perf_counter()
    with LinkingService(context, service_config, linker_config) as service:
        for i, text in enumerate(texts):
            request_started = time.perf_counter()
            response = service.link(
                LinkRequest(text=text, request_id=f"deadline-{i}")
            )
            elapsed = time.perf_counter() - request_started
            if response.error is not None:
                errors += 1
            elif response.degraded:
                degraded_latencies.append(elapsed)
            else:
                completed_latencies.append(elapsed)
        snapshot = service.snapshot()
    wall = time.perf_counter() - started
    counters = snapshot.get("counters", {})
    aborted_stages = {
        name[len("stage."):-len(".aborted")]: count
        for name, count in counters.items()
        if name.startswith("stage.") and name.endswith(".aborted")
    }
    return {
        "scale": scale,
        "documents": len(texts),
        "workers": workers,
        "deadline_seconds": deadline_seconds,
        "wall_seconds": wall,
        "completed": len(completed_latencies),
        "degraded": len(degraded_latencies),
        "errors": errors,
        "cancelled": counters.get("requests.cancelled", 0),
        "timeouts": counters.get("requests.timeouts", 0),
        "abandoned": counters.get("requests.abandoned", 0),
        "aborted_stages": aborted_stages,
        "degraded_latency": (
            summarize(degraded_latencies) if degraded_latencies else None
        ),
        "completed_latency": (
            summarize(completed_latencies) if completed_latencies else None
        ),
    }


def _load_mode(
    context: LinkingContext,
    linker_config: TenetConfig,
    scale: float,
    texts: List[str],
    workers: int,
    load_config: LoadConfig,
) -> Dict[str, object]:
    """Load-generator pass against an in-process HTTP server.

    Boots the real serving stack — admission queue, rate limiter,
    degraded-mode switch, ThreadingHTTPServer — on a free local port,
    drives it with :func:`repro.bench.load.run_load`, and folds the
    server's own overload counters into the block so client-observed
    shedding can be reconciled against what the engine reports.
    """
    import threading

    from repro.bench.load import run_load
    from repro.service import LinkingService, ServiceConfig
    from repro.service.server import create_server

    service = LinkingService(context, ServiceConfig(workers=workers), linker_config)
    server = create_server(service, "127.0.0.1", 0)
    host, port = server.server_address[:2]
    server_thread = threading.Thread(target=server.serve_forever, daemon=True)
    server_thread.start()
    try:
        block = run_load(f"http://{host}:{port}", texts, load_config)
    finally:
        server.shutdown()
        server_thread.join(timeout=10)
        server.server_close()
        snapshot = service.snapshot()
        service.close()
    counters = snapshot.get("counters", {})
    block["scale"] = scale
    block["workers"] = workers
    block["server"] = {
        "rejected": counters.get("requests.rejected", 0),
        "rejected_rate_limited": counters.get(
            "requests.rejected.rate_limited", 0
        ),
        "rejected_queue_full": counters.get("requests.rejected.queue_full", 0),
        "degraded_mode_requests": counters.get("degraded_mode.requests", 0),
        "overload": snapshot.get("overload", {}),
    }
    return block


def _routing_mode(
    context: LinkingContext,
    linker_config: TenetConfig,
    scale: float,
    documents,
    tolerance: float,
) -> Dict[str, object]:
    """Cover-mode router outcome plus the full-vs-routed parity gate.

    Links the gold corpus once through the exact (tree-cover) pipeline
    and once through the router, recording how many documents took the
    pairwise fast path, the hot-stage (tree_cover + disambiguation)
    seconds of each pass, and the entity/relation F1 of both against the
    gold annotations.  ``parity.ok`` is false when any routed F1 drifts
    further than *tolerance* from the full pipeline's — the quality gate
    ``bench compare`` enforces.
    """
    from dataclasses import replace

    from repro.eval.metrics import (
        aggregate,
        score_entity_linking,
        score_relation_linking,
    )

    # Benchmark the router even when the configured mode is "exact":
    # that mode's routing block would be trivially empty, and the gate
    # exists to watch the fast path's quality.
    routed_mode = (
        linker_config.cover_mode if linker_config.cover_mode != "exact" else "auto"
    )
    full_linker = TenetLinker(context, replace(linker_config, cover_mode="exact"))
    routed_linker = TenetLinker(
        context, replace(linker_config, cover_mode=routed_mode)
    )

    def hot_seconds(result) -> float:
        stage_seconds = result.stage_seconds
        return stage_seconds.get("tree_cover", 0.0) + stage_seconds.get(
            "disambiguation", 0.0
        )

    full_hot = routed_hot = 0.0
    routed_fast = routed_exact = 0
    full_entity, full_relation = [], []
    routed_entity, routed_relation = [], []
    for document in documents:
        full = full_linker.link(document.text)
        full_hot += hot_seconds(full)
        full_entity.append(score_entity_linking(full, document))
        full_relation.append(score_relation_linking(full, document))
        routed = routed_linker.link(document.text)
        routed_hot += hot_seconds(routed)
        if routed.cover_mode == "fast":
            routed_fast += 1
        else:
            routed_exact += 1
        routed_entity.append(score_entity_linking(routed, document))
        routed_relation.append(score_relation_linking(routed, document))

    entity_full = aggregate(full_entity).f1
    entity_routed = aggregate(routed_entity).f1
    relation_full = aggregate(full_relation).f1
    relation_routed = aggregate(routed_relation).f1
    max_abs_delta = max(
        abs(entity_full - entity_routed), abs(relation_full - relation_routed)
    )
    return {
        "scale": scale,
        "documents": len(documents),
        "config": {
            "cover_mode": routed_mode,
            "fast_max_canopies": linker_config.fast_max_canopies,
            "fast_max_mean_candidates": linker_config.fast_max_mean_candidates,
        },
        "routed_fast": routed_fast,
        "routed_exact": routed_exact,
        "hot_stage_seconds": {"full": full_hot, "routed": routed_hot},
        "parity": {
            "entity_f1_full": entity_full,
            "entity_f1_routed": entity_routed,
            "relation_f1_full": relation_full,
            "relation_f1_routed": relation_routed,
            "max_abs_delta": max_abs_delta,
            "tolerance": tolerance,
            "ok": max_abs_delta <= tolerance,
        },
    }


def _trace_mode(
    linker: TenetLinker,
    scale: float,
    texts: List[str],
) -> Dict[str, object]:
    """Per-stage span statistics from one traced pass over the corpus.

    Every document is linked with a request-scoped trace attached; the
    block aggregates the recorded span durations per stage and records
    the largest absolute disagreement between any span and the matching
    ``LinkingResult.stage_seconds`` entry.  Spans reuse the stage
    stopwatch rather than re-timing, so that delta should be exactly
    zero — the record keeps it as a falsifiable parity check.
    """
    from repro.obs import Tracer

    tracer = Tracer(enabled=True, ring_size=max(len(texts), 1))
    per_stage: Dict[str, List[float]] = {}
    max_delta = 0.0
    started = time.perf_counter()
    for i, text in enumerate(texts):
        trace = tracer.start(f"bench-trace-{i}")
        result = linker.link(text, trace=trace)
        tracer.finish(trace)
        durations = trace.stage_durations()
        for name, duration in durations.items():
            per_stage.setdefault(name, []).append(duration)
        for stage, seconds in result.stage_seconds.items():
            if stage in durations:
                max_delta = max(max_delta, abs(durations[stage] - seconds))
    wall = time.perf_counter() - started
    return {
        "scale": scale,
        "documents": len(texts),
        "wall_seconds": wall,
        "recorded": tracer.stats()["recorded_total"],
        "span_stage_max_delta_seconds": max_delta,
        "stages": {
            name: summarize(values)
            for name, values in sorted(per_stage.items())
        },
    }


def _session_mode(
    context: LinkingContext,
    linker_config: TenetConfig,
    scale: float,
    documents,
    chunks: int,
    mode: str,
    tolerance: float,
    seed: int,
) -> Dict[str, object]:
    """Incremental sessions vs. full relink-per-chunk, with a parity gate.

    Each document becomes a deterministic K-chunk stream (the same
    generator whose output the snapshot store persists).  The stream is
    fed through a :class:`~repro.session.sessions.StreamingSession`
    (timing every increment), then the same prefixes are linked from
    scratch — the cost a stateless server pays per chunk.

    Each workload's relink pass runs immediately after its feed pass, so
    slow drift (thermal scaling, allocator state) hits both sides of a
    ratio roughly equally.  ``amortized_speedup`` is the aggregate
    sum(full relink) / sum(incremental) across all increments;
    ``workload_speedups`` summarises the per-workload ratios (the median
    is the drift-robust headline number).  The parity gate compares the
    session's final state against a one-shot link of the whole document:
    in ``full`` mode the deterministic payloads must be
    **byte-identical**; in ``scoped`` mode (dirty-region re-solve)
    entity/relation F1 against gold must stay within *tolerance* of
    one-shot.  ``parity.ok`` is the flag the CLI exits 1 on — drift here
    means incremental reuse changed answers.
    """
    from repro.eval.metrics import (
        aggregate,
        score_entity_linking,
        score_relation_linking,
    )
    from repro.session import SessionConfig, StreamingSession
    from repro.session.workloads import stream_chunkings

    linker = TenetLinker(context, linker_config)
    by_doc_id = {document.doc_id: document for document in documents}
    workloads = stream_chunkings(documents, chunks=chunks, seed=seed, limit=8)

    def canonical(result) -> str:
        return json.dumps(
            result.to_json(include_timings=False), sort_keys=True
        )

    incremental_latencies: List[float] = []
    full_relink_latencies: List[float] = []
    workload_ratios: List[float] = []
    solves: Dict[str, int] = {}
    memo_hits = memo_misses = 0
    byte_identical = True
    one_shot_entity, one_shot_relation = [], []
    incremental_entity, incremental_relation = [], []
    for workload in workloads:
        session = StreamingSession(linker, SessionConfig(mode=mode))
        inc_seconds = 0.0
        for chunk in workload.chunks:
            started = time.perf_counter()
            outcome = session.feed(chunk)
            elapsed = time.perf_counter() - started
            incremental_latencies.append(elapsed)
            inc_seconds += elapsed
            solves[outcome.solve] = solves.get(outcome.solve, 0) + 1
            memo_hits += outcome.memo_hits
            memo_misses += outcome.memo_misses
        # The stateless cost of the same stream: relink the accumulated
        # prefix from scratch after every chunk, measured right after
        # this workload's feeds so drift cancels in the ratio.  The
        # final relink sees the full document, so it doubles as the
        # one-shot reference.
        relink_seconds = 0.0
        text = ""
        for chunk in workload.chunks:
            text += chunk
            started = time.perf_counter()
            one_shot = linker.link(text)
            elapsed = time.perf_counter() - started
            full_relink_latencies.append(elapsed)
            relink_seconds += elapsed
        if inc_seconds > 0:
            workload_ratios.append(relink_seconds / inc_seconds)
        final = session.result
        if canonical(final) != canonical(one_shot):
            byte_identical = False
        document = by_doc_id[workload.doc_id]
        one_shot_entity.append(score_entity_linking(one_shot, document))
        one_shot_relation.append(score_relation_linking(one_shot, document))
        incremental_entity.append(score_entity_linking(final, document))
        incremental_relation.append(score_relation_linking(final, document))

    entity_one_shot = aggregate(one_shot_entity).f1
    entity_incremental = aggregate(incremental_entity).f1
    relation_one_shot = aggregate(one_shot_relation).f1
    relation_incremental = aggregate(incremental_relation).f1
    max_abs_delta = max(
        abs(entity_one_shot - entity_incremental),
        abs(relation_one_shot - relation_incremental),
    )
    incremental_stats = summarize(incremental_latencies)
    full_relink_stats = summarize(full_relink_latencies)
    speedup = (
        full_relink_stats["total"] / incremental_stats["total"]
        if incremental_stats["total"] > 0
        else None
    )
    # The hard gate: byte parity in full mode, pinned F1 drift in scoped
    # mode (where the dirty-region re-solve is allowed to differ in the
    # last bits of BLAS sub-blocks but not in linking quality).
    ok = byte_identical if mode == "full" else max_abs_delta <= tolerance
    return {
        "scale": scale,
        "documents": len(workloads),
        "chunks": chunks,
        "mode": mode,
        "increments": len(incremental_latencies),
        "incremental_latency": incremental_stats,
        "full_relink_latency": full_relink_stats,
        "amortized_speedup": speedup,
        "workload_speedups": (
            summarize(workload_ratios) if workload_ratios else None
        ),
        "memo": {"hits": memo_hits, "misses": memo_misses},
        "solves": solves,
        "parity": {
            "byte_identical": byte_identical,
            "entity_f1_one_shot": entity_one_shot,
            "entity_f1_incremental": entity_incremental,
            "relation_f1_one_shot": relation_one_shot,
            "relation_f1_incremental": relation_incremental,
            "max_abs_delta": max_abs_delta,
            "tolerance": tolerance,
            "ok": ok,
        },
    }


def run_benchmark(
    config: BenchConfig = BenchConfig(),
    linker_config: TenetConfig = TenetConfig(),
    echo: Echo = None,
    snapshot_path: Optional[Union[str, Path]] = None,
) -> Dict[str, object]:
    """Run the full harness and return the bench record as a dict.

    With *snapshot_path*, the linking context and the gold-set corpora
    are warm-started from the :mod:`repro.snapshot` store instead of
    rebuilt (``load_or_build`` semantics: a store root builds-and-saves
    on first use).  The record's ``context_build_seconds`` then measures
    the snapshot load — the cold-vs-warm startup comparison the snapshot
    tier exists to win — and ``context_source``/``snapshot`` identify
    what was served.  Warm-started linking output is byte-identical to a
    cold build, so every other number stays comparable.
    """
    def say(message: str) -> None:
        if echo is not None:
            echo(message)

    overall = time.perf_counter()
    started = time.perf_counter()
    warm = None
    if snapshot_path is not None:
        from repro.snapshot import SnapshotSpec, load_or_build

        say(f"warm-starting context from snapshot store {snapshot_path} ...")
        spec = SnapshotSpec(
            seed=config.seed, scales=tuple(sorted(set(config.scales)))
        )
        warm = load_or_build(snapshot_path, spec, echo=say)
        warm.seed_fuzzy_cache()
        context = warm.context
    else:
        say(f"building synthetic world (seed {config.seed}) ...")
        suite = build_benchmark_suite(seed=config.seed, scale=max(config.scales))
        context = LinkingContext.build(suite.world.kb, suite.world.taxonomy)
    context_build = time.perf_counter() - started
    linker = TenetLinker(context, linker_config)

    scales: List[Dict[str, object]] = []
    corpus_by_scale: Dict[float, List[str]] = {}
    documents_by_scale: Dict[float, List[object]] = {}
    for scale in sorted(set(config.scales)):
        if warm is not None:
            datasets = warm.datasets_for_scale(scale)
        elif scale == max(config.scales):
            datasets = suite.datasets()
        else:
            datasets = build_benchmark_suite(
                seed=config.seed, scale=scale
            ).datasets()
        documents = [
            document for dataset in datasets for document in dataset.documents
        ]
        texts = [document.text for document in documents]
        corpus_by_scale[scale] = texts
        documents_by_scale[scale] = documents
        say(
            f"scale {scale:g}: {len(texts)} documents x "
            f"{config.repeats} repeats (+{config.warmup} warmup) ..."
        )
        scales.append(
            _measure_scale(linker, scale, texts, config.repeats, config.warmup)
        )

    largest = max(corpus_by_scale)
    comparison = None
    if config.scalar_baseline:
        say(f"coherence batch-vs-scalar comparison at scale {largest:g} ...")
        comparison = _coherence_comparison(
            linker, largest, corpus_by_scale[largest], config.repeats
        )

    say(
        f"service throughput at scale {largest:g} "
        f"({config.service_workers} workers) ..."
    )
    service = _service_throughput(
        context,
        linker_config,
        largest,
        corpus_by_scale[largest],
        config.service_workers,
    )

    deadline = None
    if config.deadline_seconds is not None:
        say(
            f"deadline mode at scale {largest:g} "
            f"(deadline {config.deadline_seconds:g}s) ..."
        )
        deadline = _deadline_mode(
            context,
            linker_config,
            largest,
            corpus_by_scale[largest],
            config.service_workers,
            config.deadline_seconds,
        )

    cluster = None
    if config.cluster:
        say(
            f"cluster mode at scale {largest:g} "
            f"({config.service_workers} worker processes) ..."
        )
        cluster = _cluster_mode(
            context,
            linker_config,
            largest,
            corpus_by_scale[largest],
            config.service_workers,
            config.seed,
            snapshot_path,
            say,
        )

    trace = None
    if config.trace:
        say(f"trace mode at scale {largest:g} ...")
        trace = _trace_mode(linker, largest, corpus_by_scale[largest])

    routing = None
    if config.routing:
        say(f"routing pass at scale {largest:g} ...")
        routing = _routing_mode(
            context,
            linker_config,
            largest,
            documents_by_scale[largest],
            config.routing_tolerance,
        )

    session = None
    if config.session:
        say(
            f"session pass at scale {largest:g} "
            f"({config.session_chunks} chunks, {config.session_mode} mode) ..."
        )
        session = _session_mode(
            context,
            linker_config,
            largest,
            documents_by_scale[largest],
            config.session_chunks,
            config.session_mode,
            config.session_tolerance,
            config.seed,
        )

    load = None
    if config.load is not None:
        say(
            f"load mode at scale {largest:g} "
            f"({config.load.mode} loop, {config.load.duration_seconds:g}s) ..."
        )
        load = _load_mode(
            context,
            linker_config,
            largest,
            corpus_by_scale[largest],
            config.service_workers,
            config.load,
        )

    report: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "kind": REPORT_KIND,
        "rev": git_rev(),
        "label": config.label,
        "generated_unix": time.time(),
        "config": {
            "scales": list(config.scales),
            "repeats": config.repeats,
            "warmup": config.warmup,
            "seed": config.seed,
            "service_workers": config.service_workers,
            "cluster": config.cluster,
            "deadline_seconds": config.deadline_seconds,
            "trace": config.trace,
            "load": config.load.to_json() if config.load is not None else None,
            "routing": config.routing,
            "routing_tolerance": config.routing_tolerance,
            "cover_mode": linker_config.cover_mode,
            "session": config.session,
            "session_chunks": config.session_chunks,
            "session_mode": config.session_mode,
            "session_tolerance": config.session_tolerance,
        },
        "env": _env_fingerprint(),
        "context_build_seconds": context_build,
        "context_source": "snapshot" if warm is not None else "cold",
        "snapshot": warm.info() if warm is not None else None,
        "peak_rss_kb": _peak_rss_kb(),
        "total_seconds": time.perf_counter() - overall,
        "scales": scales,
        "coherence_comparison": comparison,
        "routing": routing,
        "service": service,
        "cluster": cluster,
        "deadline": deadline,
        "trace": trace,
        "load": load,
        "session": session,
    }
    return report


def write_report(
    report: Dict[str, object], path: Union[str, Path]
) -> Path:
    """Write one bench record as pretty JSON, returning the path."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=1, sort_keys=False) + "\n")
    return path


def format_report_summary(report: Dict[str, object]) -> str:
    """Short human-readable digest of one bench record."""
    lines: List[str] = []
    env = report.get("env", {})
    lines.append(
        f"rev {report.get('rev')} | python {env.get('python')} | "
        f"numpy {env.get('numpy')} | peak RSS "
        f"{report.get('peak_rss_kb')} KiB"
    )
    snapshot = report.get("snapshot")
    build_seconds = report.get("context_build_seconds")
    if snapshot:
        lines.append(
            f"context: {snapshot.get('id')} ({snapshot.get('source')}) "
            f"loaded in {build_seconds:.3f}s"
        )
    elif build_seconds is not None:
        lines.append(f"context: cold build in {build_seconds:.3f}s")
    for entry in report.get("scales", []):
        stages = entry.get("stages", {})
        parts = []
        for stage in ("candidates", "coherence", "tree_cover", "disambiguation"):
            block = stages.get(stage)
            if block:
                parts.append(f"{stage}={1000 * block['mean']:.2f}ms")
        dps = entry.get("documents_per_second")
        lines.append(
            f"scale {entry.get('scale'):g}: {entry.get('documents')} docs, "
            f"{dps:.1f} docs/s | " + " ".join(parts)
        )
    comparison = report.get("coherence_comparison")
    if comparison:
        lines.append(
            f"coherence batch vs scalar: {comparison['speedup']:.2f}x speedup "
            f"(parity={'ok' if comparison['parity'] else 'MISMATCH'})"
        )
    routing = report.get("routing")
    if routing:
        parity = routing.get("parity", {})
        hot = routing.get("hot_stage_seconds", {})
        full_hot, routed_hot = hot.get("full"), hot.get("routed")
        speedup = (
            f", hot-stage {full_hot / routed_hot:.2f}x"
            if full_hot and routed_hot
            else ""
        )
        lines.append(
            f"routing ({routing.get('config', {}).get('cover_mode')}): "
            f"{routing.get('routed_fast')}/{routing.get('documents')} fast"
            f"{speedup} | F1 delta {parity.get('max_abs_delta', 0.0):.4f} "
            f"(parity={'ok' if parity.get('ok') else 'FAIL'})"
        )
    service = report.get("service")
    if service:
        lines.append(
            f"service: {service['documents_per_second']:.1f} docs/s over "
            f"{service['workers']} workers"
        )
    cluster = report.get("cluster")
    if cluster:
        scaling = cluster.get("scaling", {})
        parity = cluster.get("parity", {})
        speedup = scaling.get("speedup")
        lines.append(
            f"cluster: {scaling.get('baseline_workers')}→"
            f"{scaling.get('workers')} workers "
            + (f"{speedup:.2f}x docs/s" if speedup else "speedup n/a")
            + f" (parity={'ok' if parity.get('ok') else 'MISMATCH'})"
        )
    deadline = report.get("deadline")
    if deadline:
        degraded = deadline.get("degraded_latency") or {}
        mean = degraded.get("mean")
        lines.append(
            f"deadline {deadline['deadline_seconds']:g}s: "
            f"{deadline['degraded']}/{deadline['documents']} degraded, "
            f"{deadline['cancelled']} cancelled"
            + (f", degraded-path mean {1000 * mean:.2f}ms" if mean else "")
        )
    trace = report.get("trace")
    if trace:
        lines.append(
            f"trace: {trace['recorded']} traces over "
            f"{trace['documents']} docs, span/stage max delta "
            f"{trace['span_stage_max_delta_seconds']:.2e}s"
        )
    load = report.get("load")
    if load:
        from repro.bench.load import format_load_summary

        lines.append(format_load_summary(load))
    session = report.get("session")
    if session:
        parity = session.get("parity", {})
        speedup = session.get("amortized_speedup")
        incremental = session.get("incremental_latency", {})
        relink = session.get("full_relink_latency", {})
        gate = "byte-identical" if parity.get("byte_identical") else (
            f"F1 delta {parity.get('max_abs_delta', 0.0):.4f}"
        )
        ratios = session.get("workload_speedups") or {}
        median = ratios.get("p50")
        lines.append(
            f"session ({session.get('mode')}, {session.get('chunks')} chunks): "
            f"{session.get('increments')} increments over "
            f"{session.get('documents')} docs | "
            f"incremental {1000 * incremental.get('mean', 0.0):.2f}ms vs "
            f"relink {1000 * relink.get('mean', 0.0):.2f}ms"
            + (f" ({speedup:.2f}x amortized)" if speedup else "")
            + (f", median workload {median:.2f}x" if median else "")
            + f" | {gate} (parity={'ok' if parity.get('ok') else 'FAIL'})"
        )
    return "\n".join(lines)
