"""Closed- and open-loop load generation against a live linking server.

``tenet-repro bench --load`` (in-process server) and ``tenet-repro
bench load --url`` (any live server) drive sustained traffic at the
JSON-over-HTTP front end and measure what the overload machinery
actually does under pressure:

* **closed loop** — a fixed number of concurrent clients, each issuing
  its next request the moment the previous one answers.  Offered load
  self-limits to the server's capacity; this is the classic
  "N users hammering" model and measures saturated throughput.
* **open loop** — requests depart on a fixed-QPS schedule regardless of
  how the server is doing (arrivals don't wait for completions), which
  is how real traffic behaves and the only mode that can actually
  overload the server.  Latency percentiles then include client-side
  queueing, exactly as a caller would experience them.

Every sample records the HTTP status, wall latency, whether a 429
carried its mandatory ``Retry-After`` header, and whether the answer
was served degraded (prior-only fast path).  The result is the
``load`` block of the bench record — goodput vs. shed rate, p50/p95/p99,
status histogram — which :func:`repro.bench.schema.validate_report`
checks and ``bench compare`` diffs across revisions.

Stdlib-only (urllib + threads), like the server it measures.
"""

from __future__ import annotations

import itertools
import json
import math
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

LOAD_MODES = ("closed", "open")


@dataclass(frozen=True)
class LoadConfig:
    """Knobs of one load-generation run."""

    mode: str = "closed"
    duration_seconds: float = 5.0
    concurrency: int = 4
    qps: float = 20.0  # open loop only: fixed arrival rate
    clients: int = 4  # distinct X-Client-Id values to rotate through
    timeout_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.mode not in LOAD_MODES:
            raise ValueError(
                f"mode must be one of {list(LOAD_MODES)}, got {self.mode!r}"
            )
        if self.duration_seconds <= 0:
            raise ValueError("duration_seconds must be > 0")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.qps <= 0:
            raise ValueError("qps must be > 0")
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be > 0")

    def to_json(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "duration_seconds": self.duration_seconds,
            "concurrency": self.concurrency,
            "qps": self.qps if self.mode == "open" else None,
            "clients": self.clients,
            "timeout_seconds": self.timeout_seconds,
        }


@dataclass(frozen=True)
class _Sample:
    """One request's outcome as the client saw it."""

    status: int  # 0 = transport error (refused / timeout / reset)
    seconds: float
    retry_after: Optional[bool] = None  # 429 only: header present?
    degraded: bool = False


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (``q`` in [0, 1]); None on empty input."""
    if not values:
        return None
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _issue(url: str, text: str, client_id: str, timeout: float) -> _Sample:
    """POST one /link request and classify the outcome."""
    body = json.dumps({"text": text}).encode("utf-8")
    request = urllib.request.Request(
        f"{url.rstrip('/')}/link",
        data=body,
        headers={
            "Content-Type": "application/json",
            "X-Client-Id": client_id,
        },
        method="POST",
    )
    started = time.perf_counter()
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            payload = json.loads(response.read())
            elapsed = time.perf_counter() - started
            return _Sample(
                status=response.status,
                seconds=elapsed,
                degraded=bool(payload.get("degraded", False)),
            )
    except urllib.error.HTTPError as exc:
        elapsed = time.perf_counter() - started
        exc.read()  # drain so the keep-alive connection stays usable
        retry_after = None
        if exc.code == 429:
            retry_after = exc.headers.get("Retry-After") is not None
        return _Sample(status=exc.code, seconds=elapsed, retry_after=retry_after)
    except (urllib.error.URLError, OSError, ValueError):
        # Connection refused, reset, socket timeout, or a torn response
        # body: a transport-level failure, not an HTTP status.
        return _Sample(status=0, seconds=time.perf_counter() - started)


def run_load(
    url: str, texts: Sequence[str], config: LoadConfig = LoadConfig()
) -> Dict[str, object]:
    """Drive *texts* (cycled) at *url* and return the ``load`` block."""
    if not texts:
        raise ValueError("texts must be non-empty")
    samples: List[_Sample] = []
    samples_lock = threading.Lock()
    ticket = itertools.count()
    ticket_lock = threading.Lock()

    def next_ticket() -> int:
        with ticket_lock:
            return next(ticket)

    def fire() -> None:
        i = next_ticket()
        sample = _issue(
            url,
            texts[i % len(texts)],
            f"load-client-{i % config.clients}",
            config.timeout_seconds,
        )
        with samples_lock:
            samples.append(sample)

    started = time.perf_counter()
    deadline = started + config.duration_seconds
    if config.mode == "closed":
        # Each worker keeps exactly one request in flight until time is
        # up: offered load adapts to the server's speed.
        def worker() -> None:
            while time.perf_counter() < deadline:
                fire()

        threads = [
            threading.Thread(target=worker, daemon=True)
            for _ in range(config.concurrency)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    else:
        # Open loop: departures follow the fixed 1/qps schedule whether
        # or not earlier requests have answered.  The pool is sized well
        # past `concurrency` so slow responses pile up in flight (the
        # point of the model) instead of silently throttling arrivals.
        interval = 1.0 / config.qps
        planned = max(1, int(config.duration_seconds * config.qps))
        pool_size = max(config.concurrency, min(64, planned))
        with ThreadPoolExecutor(max_workers=pool_size) as pool:
            futures = []
            for k in range(planned):
                now = time.perf_counter()
                target = started + k * interval
                if target > now:
                    time.sleep(target - now)
                futures.append(pool.submit(fire))
            for future in futures:
                future.result()
    wall = time.perf_counter() - started

    status_counts: Dict[str, int] = {}
    for sample in samples:
        key = str(sample.status) if sample.status else "transport_error"
        status_counts[key] = status_counts.get(key, 0) + 1
    completed = [s for s in samples if s.status == 200]
    rejected = [s for s in samples if s.status == 429]
    errors_5xx = sum(1 for s in samples if 500 <= s.status <= 599)
    errors_other = sum(
        1
        for s in samples
        if s.status != 200 and s.status != 429 and not 500 <= s.status <= 599
    )
    latencies = [s.seconds for s in completed]
    offered = len(samples)
    return {
        "config": config.to_json(),
        "url": url,
        "wall_seconds": wall,
        "offered": offered,
        "offered_rps": offered / wall if wall else None,
        "completed": len(completed),
        "rejected": len(rejected),
        "errors_5xx": errors_5xx,
        "errors_other": errors_other,
        "degraded": sum(1 for s in completed if s.degraded),
        "goodput_rps": len(completed) / wall if wall else None,
        "shed_rate": len(rejected) / offered if offered else 0.0,
        "retry_after_missing": sum(
            1 for s in rejected if s.retry_after is False
        ),
        "status_counts": dict(sorted(status_counts.items())),
        "latency": (
            {
                "count": len(latencies),
                "mean_seconds": sum(latencies) / len(latencies),
                "p50_seconds": percentile(latencies, 0.50),
                "p95_seconds": percentile(latencies, 0.95),
                "p99_seconds": percentile(latencies, 0.99),
                "max_seconds": max(latencies),
            }
            if latencies
            else None
        ),
    }


def format_load_summary(block: Dict[str, object]) -> str:
    """One-line human digest (also used for the CI job summary)."""
    latency = block.get("latency") or {}
    p99 = latency.get("p99_seconds")
    goodput = block.get("goodput_rps")
    config = block.get("config", {})
    return (
        f"load ({config.get('mode')}): "
        f"{block.get('offered')} offered @ "
        f"{(block.get('offered_rps') or 0.0):.1f} rps | "
        f"goodput {(goodput or 0.0):.1f} rps | "
        f"shed {100 * float(block.get('shed_rate') or 0.0):.1f}% | "
        f"5xx {block.get('errors_5xx')} | "
        f"degraded {block.get('degraded')} | "
        + (f"p99 {1000 * p99:.1f}ms" if p99 is not None else "p99 n/a")
    )
