"""Scripted session conversation against a live server, with asserts.

The executable half of the CI ``session-smoke`` job (and the local
``make session-smoke`` mirror): drive a real ``serve --sessions``
server through the session lifecycle end to end and fail loudly on any
drift —

* a **stream** session fed sentence chunks must end byte-identical to a
  one-shot ``POST /link`` of the concatenated text (the full-mode
  parity guarantee, checked over the wire rather than in-process);
* a **conversation** session must accept newline-joined turns, report
  dense increments, and round-trip introspection and deletion
  (``GET`` → 200, ``DELETE`` → 200, ``GET`` again → 404);
* protocol misuse must map to the documented status codes (unknown
  request fields and kind mismatches → 400, feeds with ``--sessions``
  off → 404);
* the server's ``session.*`` metrics must account for every feed the
  script made.

Usage::

    python -m repro.bench.session_smoke --url http://127.0.0.1:8080

Exit status 0 when every check holds, 1 on the first violation.  Only
stdlib HTTP — the driver must not share code with the server under
test.
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Tuple

# A paragraph over the seed synthetic world's best-known surface, so
# the parity check exercises real links, not just non-linkables.
STREAM_TEXT = (
    "Brooklyn is twinned with Brooklyn. "
    "The borough grew quickly after the bridge opened. "
    "Brooklyn publishes a yearly report about its growth."
)

CONVERSATION_TURNS = (
    "Brooklyn is twinned with Brooklyn.",
    "It grew quickly after the bridge opened.",
    "Brooklyn remains the topic of this conversation.",
)


class SmokeFailure(AssertionError):
    """One scripted expectation did not hold."""


def _request(
    url: str,
    payload: Optional[Dict[str, Any]] = None,
    method: str = "GET",
    timeout: float = 30.0,
) -> Tuple[int, Dict[str, Any]]:
    """One JSON round-trip; HTTP errors come back as (status, body)."""
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        body = error.read()
        try:
            return error.code, json.loads(body)
        except json.JSONDecodeError:
            return error.code, {"raw": body.decode(errors="replace")}


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def _chunks_of(text: str) -> list:
    """Sentence-aligned chunks that concatenate back to *text*."""
    pieces = text.split(". ")
    chunks = [piece + ". " for piece in pieces[:-1]] + [pieces[-1]]
    _expect("".join(chunks) == text, "chunking lost bytes")
    return chunks


def run_stream_parity(base: str) -> int:
    """Feed STREAM_TEXT in chunks; final state must match one-shot /link."""
    chunks = _chunks_of(STREAM_TEXT)
    last: Dict[str, Any] = {}
    for i, chunk in enumerate(chunks):
        status, last = _request(
            f"{base}/session/smoke-stream/feed",
            {"chunk": chunk},
            method="POST",
        )
        _expect(status == 200, f"feed {i} returned {status}: {last}")
        _expect(
            last["increment"] == i + 1,
            f"feed {i} increment {last['increment']}, wanted {i + 1}",
        )
        _expect(
            last["created"] == (i == 0),
            f"feed {i} created={last['created']}",
        )
    status, one_shot = _request(
        f"{base}/link", {"text": STREAM_TEXT}, method="POST"
    )
    _expect(status == 200, f"/link returned {status}: {one_shot}")
    session_state = json.dumps(last["result"], sort_keys=True)
    linked = json.dumps(one_shot["result"], sort_keys=True)
    _expect(
        session_state == linked,
        "chunked session final state differs from one-shot /link",
    )
    print(
        f"stream parity: {len(chunks)} chunks -> byte-identical "
        f"({last['mentions']} mentions, solve={last['solve']!r})"
    )
    return len(chunks)


def run_conversation(base: str) -> int:
    """Multi-turn conversation: dense increments, info, delete, 404."""
    for i, turn in enumerate(CONVERSATION_TURNS):
        status, body = _request(
            f"{base}/session/smoke-conv/feed",
            {"chunk": turn, "kind": "conversation"},
            method="POST",
        )
        _expect(status == 200, f"turn {i} returned {status}: {body}")
        _expect(
            body["increment"] == i + 1,
            f"turn {i} increment {body['increment']}",
        )
        _expect(body["kind"] == "conversation", f"turn {i} kind {body['kind']}")
    status, info = _request(f"{base}/session/smoke-conv")
    _expect(status == 200, f"session GET returned {status}")
    _expect(
        info["increment"] == len(CONVERSATION_TURNS),
        f"info increment {info.get('increment')}",
    )
    status, _ = _request(f"{base}/session/smoke-conv", method="DELETE")
    _expect(status == 200, f"DELETE returned {status}")
    status, _ = _request(f"{base}/session/smoke-conv")
    _expect(status == 404, f"GET after DELETE returned {status}, wanted 404")
    print(f"conversation: {len(CONVERSATION_TURNS)} turns, lifecycle clean")
    return len(CONVERSATION_TURNS)


def run_protocol_errors(base: str) -> None:
    """Misuse maps to the documented status codes, never a 5xx."""
    status, body = _request(
        f"{base}/session/smoke-bad/feed",
        {"text": "wrong field name"},
        method="POST",
    )
    _expect(status == 400, f"unknown field returned {status}: {body}")
    status, _ = _request(
        f"{base}/session/smoke-stream2/feed",
        {"chunk": "first as a stream."},
        method="POST",
    )
    _expect(status == 200, f"setup feed returned {status}")
    status, body = _request(
        f"{base}/session/smoke-stream2/feed",
        {"chunk": "now as a conversation.", "kind": "conversation"},
        method="POST",
    )
    _expect(status == 400, f"kind mismatch returned {status}: {body}")
    _expect(
        body.get("error", {}).get("code") == "bad_request",
        f"kind mismatch error code: {body}",
    )
    print("protocol errors: 400s where documented, no 5xx")


def run_metrics_accounting(base: str, feeds_made: int) -> None:
    status, metrics = _request(f"{base}/metrics")
    _expect(status == 200, f"/metrics returned {status}")
    counters = metrics.get("counters", {})
    observed = counters.get("session.feeds", 0)
    _expect(
        observed >= feeds_made,
        f"server counted {observed} session feeds, script made {feeds_made}",
    )
    _expect(
        "sessions" in metrics,
        "metrics payload carries no sessions block",
    )
    print(
        f"metrics: session.feeds={observed} covers the scripted "
        f"{feeds_made}, active={metrics['sessions'].get('active')}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="scripted session smoke against a live --sessions server"
    )
    parser.add_argument("--url", default="http://127.0.0.1:8080")
    args = parser.parse_args(argv)
    base = args.url.rstrip("/")
    try:
        feeds = run_stream_parity(base)
        feeds += run_conversation(base)
        run_protocol_errors(base)
        run_metrics_accounting(base, feeds)
    except SmokeFailure as failure:
        print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: session smoke held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
