"""The ``BENCH_*.json`` record schema.

One benchmark run produces one JSON document::

    {
      "schema_version": 2,
      "kind": "tenet-bench",
      "rev": "<git short rev or label>",
      "label": "<freeform run label>",
      "generated_unix": 1754000000.0,
      "config": {"scales": [...], "repeats": N, "warmup": N, "seed": N,
                 "service_workers": N},
      "env": {"python": ..., "implementation": ..., "platform": ...,
              "machine": ..., "cpu_count": ..., "numpy": ...},
      "context_build_seconds": ...,
      "context_source": "cold" | "snapshot",        # optional (older records)
      "snapshot": {"id": ..., "path": ..., "schema_version": N,
                   "content_digest": ..., "source": "warm" | "built",
                   "load_seconds": ..., "artifacts": {...}} | null,
      "peak_rss_kb": ...,
      "total_seconds": ...,
      "scales": [
        {"scale": 1.0, "documents": N, "words": N, "runs": N,
         "documents_per_second": ...,
         "stages": {"extract": {<stats>}, "candidates": {<stats>},
                    "coherence": {<stats>}, "tree_cover": {<stats>},
                    "grouping": {<stats>}, "disambiguation": {<stats>},
                    "total": {<stats>}},
         "graph": {"mentions": N, "candidate_nodes": N, "nodes": N,
                   "edges": N, "total_weight": ..., "max_degree": N,
                   "cover_edges": N}},
        ...
      ],
      "coherence_comparison": {"scale": ..., "documents": N,
                               "batch_seconds": ..., "scalar_seconds": ...,
                               "speedup": ..., "parity": true} | null,
      "routing": {"scale": ..., "documents": N,
                  "config": {"cover_mode": "auto",
                             "fast_max_canopies": N,
                             "fast_max_mean_candidates": ...},
                  "routed_fast": N, "routed_exact": N,
                  "hot_stage_seconds": {"full": ..., "routed": ...},
                  "parity": {"entity_f1_full": ..., "entity_f1_routed": ...,
                             "relation_f1_full": ...,
                             "relation_f1_routed": ...,
                             "max_abs_delta": ..., "tolerance": ...,
                             "ok": true}} | null,
      "service": {"scale": ..., "documents": N, "workers": N,
                  "wall_seconds": ..., "documents_per_second": ...,
                  "latency": {...}, "caches": {...}} | null,
      "cluster": {"scale": ..., "documents": N, "processes": N,
                  "runs": [{"workers": N, "wall_seconds": ...,
                            "documents_per_second": ..., "errors": N,
                            "parity_mismatches": N, "deaths": N,
                            "respawns": N, "dispatch": {...}}, ...],
                  "scaling": {"baseline_workers": N, "workers": N,
                              "speedup": ... | null},
                  "parity": {"reference": "single-process",
                             "mismatches": N, "ok": true}} | null,
      "deadline": {"scale": ..., "documents": N, "workers": N,
                   "deadline_seconds": ..., "completed": N,
                   "degraded": N, "errors": N, "cancelled": N,
                   "timeouts": N, "abandoned": N,
                   "aborted_stages": {"<stage>": N, ...},
                   "degraded_latency": {<stats>} | null,
                   "completed_latency": {<stats>} | null} | null,
      "trace": {"scale": ..., "documents": N, "wall_seconds": ...,
                "recorded": N, "span_stage_max_delta_seconds": ...,
                "stages": {"<stage>": {<stats>}, ...}} | null,
      "load": {"config": {"mode": "closed" | "open", ...},
               "url": ..., "wall_seconds": ...,
               "offered": N, "offered_rps": ..., "completed": N,
               "rejected": N, "errors_5xx": N, "errors_other": N,
               "degraded": N, "goodput_rps": ..., "shed_rate": ...,
               "retry_after_missing": N,
               "status_counts": {"200": N, "429": N, ...},
               "latency": {"count": N, "mean_seconds": ...,
                           "p50_seconds": ..., "p95_seconds": ...,
                           "p99_seconds": ..., "max_seconds": ...} | null
              } | null,
      "session": {"scale": ..., "documents": N, "chunks": N,
                  "mode": "full" | "scoped", "increments": N,
                  "incremental_latency": {<stats>},
                  "full_relink_latency": {<stats>},
                  "amortized_speedup": ...,
                  "workload_speedups": {<stats>} | null,
                  "memo": {"hits": N, "misses": N},
                  "solves": {"initial": N, "full": N, "scoped": N},
                  "parity": {"byte_identical": true,
                             "entity_f1_one_shot": ...,
                             "entity_f1_incremental": ...,
                             "relation_f1_one_shot": ...,
                             "relation_f1_incremental": ...,
                             "max_abs_delta": ..., "tolerance": ...,
                             "ok": true}} | null
    }

where ``<stats>`` is the :func:`summarize` block (count / total / mean /
min / max / p50 / stdev, all in seconds).  The ``caches`` block carries
the :mod:`repro.caching` LRU hit/miss/eviction counters (candidate
memo, similarity pair cache, alias fuzzy memo) so cache efficacy is part
of the recorded trajectory.

``schema_version`` is bumped whenever a field changes meaning; readers
(:func:`repro.bench.compare.load_report`) refuse records from a newer
schema instead of misinterpreting them.  Version 2 added the ``routing``
block (cover-mode router outcome plus the full-vs-routed quality-parity
gate); version 3 added the ``cluster`` block (multi-process sharded
serving: docs/s per worker count, the 1-to-N scaling factor, and the
byte-parity verdict against the single-process engine); version 4 added
the ``session`` block (incremental feed latency vs. a full relink per
chunk, the amortized speedup, and the chunked-vs-one-shot final-state
parity gate — byte-identical in ``full`` mode, pinned F1 tolerance in
``scoped``).  Older records remain readable — every added block is
optional.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

SCHEMA_VERSION = 4
REPORT_KIND = "tenet-bench"

# Stage names the harness always times (via LinkingResult.stage_seconds,
# the same record eval/timing.py and the service's /metrics read).
CORE_STAGES = (
    "extract",
    "candidates",
    "coherence",
    "tree_cover",
    "grouping",
    "disambiguation",
    "total",
)


class BenchSchemaError(ValueError):
    """A bench JSON document does not conform to the schema."""


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Count/total/mean/min/max/p50/stdev summary of a sample list."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    ordered = sorted(float(v) for v in values)
    n = len(ordered)
    total = sum(ordered)
    mean = total / n
    if n % 2:
        median = ordered[n // 2]
    else:
        median = 0.5 * (ordered[n // 2 - 1] + ordered[n // 2])
    variance = sum((v - mean) ** 2 for v in ordered) / n
    return {
        "count": n,
        "total": total,
        "mean": mean,
        "min": ordered[0],
        "max": ordered[-1],
        "p50": median,
        "stdev": math.sqrt(variance),
    }


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_stats(block: object, where: str, problems: List[str]) -> None:
    if not isinstance(block, dict):
        problems.append(f"{where}: stats block must be an object")
        return
    for field in ("count", "total", "mean", "min", "max", "p50", "stdev"):
        if field not in block:
            problems.append(f"{where}: missing stats field {field!r}")
        elif not _is_number(block[field]):
            problems.append(f"{where}: stats field {field!r} is not a number")
    if _is_number(block.get("mean")) and block["mean"] < 0:
        problems.append(f"{where}: negative mean")


def validate_report(payload: object) -> List[str]:
    """All schema problems of one parsed bench document (empty = valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["report must be a JSON object"]

    version = payload.get("schema_version")
    if not isinstance(version, int):
        problems.append("missing or non-integer schema_version")
    elif version > SCHEMA_VERSION:
        problems.append(
            f"schema_version {version} is newer than supported {SCHEMA_VERSION}"
        )
    if payload.get("kind") != REPORT_KIND:
        problems.append(f"kind must be {REPORT_KIND!r}")
    if not isinstance(payload.get("rev"), str):
        problems.append("missing rev")

    env = payload.get("env")
    if not isinstance(env, dict):
        problems.append("missing env fingerprint")
    else:
        for field in ("python", "platform", "numpy"):
            if field not in env:
                problems.append(f"env: missing field {field!r}")

    scales = payload.get("scales")
    if not isinstance(scales, list) or not scales:
        problems.append("scales must be a non-empty list")
        scales = []
    for i, entry in enumerate(scales):
        where = f"scales[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: must be an object")
            continue
        if not _is_number(entry.get("scale")):
            problems.append(f"{where}: missing numeric scale")
        if not isinstance(entry.get("documents"), int):
            problems.append(f"{where}: missing document count")
        stages = entry.get("stages")
        if not isinstance(stages, dict) or not stages:
            problems.append(f"{where}: stages must be a non-empty object")
            continue
        for stage in CORE_STAGES:
            if stage not in stages:
                problems.append(f"{where}: missing stage {stage!r}")
        for stage, block in stages.items():
            _check_stats(block, f"{where}.stages[{stage!r}]", problems)

    # Optional warm-start provenance (absent in pre-snapshot records —
    # additions stay backward compatible within schema_version 1).
    source = payload.get("context_source")
    if source is not None and source not in ("cold", "snapshot"):
        problems.append(
            f"context_source must be 'cold' or 'snapshot', got {source!r}"
        )
    snapshot = payload.get("snapshot")
    if snapshot is not None:
        if not isinstance(snapshot, dict):
            problems.append("snapshot must be an object or null")
        else:
            for field in ("id", "content_digest"):
                if not isinstance(snapshot.get(field), str):
                    problems.append(f"snapshot: missing string {field!r}")
            if not _is_number(snapshot.get("load_seconds")):
                problems.append("snapshot: missing numeric 'load_seconds'")
    if source == "snapshot" and snapshot is None:
        problems.append("context_source is 'snapshot' but snapshot block is null")

    comparison = payload.get("coherence_comparison")
    if comparison is not None:
        if not isinstance(comparison, dict):
            problems.append("coherence_comparison must be an object or null")
        else:
            for field in ("batch_seconds", "scalar_seconds", "speedup"):
                if not _is_number(comparison.get(field)):
                    problems.append(
                        f"coherence_comparison: missing numeric {field!r}"
                    )
            if not isinstance(comparison.get("parity"), bool):
                problems.append("coherence_comparison: missing parity flag")

    routing = payload.get("routing")
    if routing is not None:
        _check_routing_block(routing, problems)

    service = payload.get("service")
    if service is not None:
        if not isinstance(service, dict):
            problems.append("service must be an object or null")
        else:
            if not _is_number(service.get("documents_per_second")):
                problems.append("service: missing documents_per_second")
            if not isinstance(service.get("caches"), dict):
                problems.append("service: missing caches block")

    cluster = payload.get("cluster")
    if cluster is not None:
        _check_cluster_block(cluster, problems)

    deadline = payload.get("deadline")
    if deadline is not None:
        if not isinstance(deadline, dict):
            problems.append("deadline must be an object or null")
        else:
            if not _is_number(deadline.get("deadline_seconds")):
                problems.append("deadline: missing deadline_seconds")
            for field in ("completed", "degraded", "cancelled"):
                if not isinstance(deadline.get(field), int):
                    problems.append(f"deadline: missing integer {field!r}")
            if not isinstance(deadline.get("aborted_stages"), dict):
                problems.append("deadline: missing aborted_stages block")
            for field in ("degraded_latency", "completed_latency"):
                block = deadline.get(field)
                if block is not None:
                    _check_stats(block, f"deadline.{field}", problems)

    trace = payload.get("trace")
    if trace is not None:
        if not isinstance(trace, dict):
            problems.append("trace must be an object or null")
        else:
            if not isinstance(trace.get("documents"), int):
                problems.append("trace: missing integer 'documents'")
            if not isinstance(trace.get("recorded"), int):
                problems.append("trace: missing integer 'recorded'")
            if not _is_number(trace.get("span_stage_max_delta_seconds")):
                problems.append(
                    "trace: missing numeric 'span_stage_max_delta_seconds'"
                )
            stages = trace.get("stages")
            if not isinstance(stages, dict) or not stages:
                problems.append("trace: stages must be a non-empty object")
            else:
                for stage, block in stages.items():
                    _check_stats(block, f"trace.stages[{stage!r}]", problems)

    load = payload.get("load")
    if load is not None:
        _check_load_block(load, problems)

    session = payload.get("session")
    if session is not None:
        _check_session_block(session, problems)

    return problems


def _check_routing_block(routing: object, problems: List[str]) -> None:
    """Schema of the cover-mode routing block (schema_version >= 2)."""
    if not isinstance(routing, dict):
        problems.append("routing must be an object or null")
        return
    if not isinstance(routing.get("documents"), int):
        problems.append("routing: missing integer 'documents'")
    for field in ("routed_fast", "routed_exact"):
        if not isinstance(routing.get(field), int):
            problems.append(f"routing: missing integer {field!r}")
    config = routing.get("config")
    if not isinstance(config, dict):
        problems.append("routing: missing config block")
    elif config.get("cover_mode") not in ("exact", "fast", "auto"):
        problems.append(
            "routing: config.cover_mode must be 'exact', 'fast', or "
            f"'auto', got {config.get('cover_mode')!r}"
        )
    hot = routing.get("hot_stage_seconds")
    if not isinstance(hot, dict):
        problems.append("routing: missing hot_stage_seconds block")
    else:
        for field in ("full", "routed"):
            if not _is_number(hot.get(field)):
                problems.append(
                    f"routing: hot_stage_seconds missing numeric {field!r}"
                )
    parity = routing.get("parity")
    if not isinstance(parity, dict):
        problems.append("routing: missing parity block")
    else:
        for field in (
            "entity_f1_full",
            "entity_f1_routed",
            "relation_f1_full",
            "relation_f1_routed",
            "max_abs_delta",
            "tolerance",
        ):
            if not _is_number(parity.get(field)):
                problems.append(f"routing.parity: missing numeric {field!r}")
        if not isinstance(parity.get("ok"), bool):
            problems.append("routing.parity: missing ok flag")


def _check_cluster_block(cluster: object, problems: List[str]) -> None:
    """Schema of the multi-process cluster block (schema_version >= 3)."""
    if not isinstance(cluster, dict):
        problems.append("cluster must be an object or null")
        return
    if not isinstance(cluster.get("documents"), int):
        problems.append("cluster: missing integer 'documents'")
    if not isinstance(cluster.get("processes"), int):
        problems.append("cluster: missing integer 'processes'")
    runs = cluster.get("runs")
    if not isinstance(runs, list) or not runs:
        problems.append("cluster: runs must be a non-empty list")
        runs = []
    for i, run in enumerate(runs):
        where = f"cluster.runs[{i}]"
        if not isinstance(run, dict):
            problems.append(f"{where}: must be an object")
            continue
        for field in ("workers", "errors", "parity_mismatches", "deaths",
                      "respawns"):
            if not isinstance(run.get(field), int):
                problems.append(f"{where}: missing integer {field!r}")
        for field in ("wall_seconds", "documents_per_second"):
            if not _is_number(run.get(field)):
                problems.append(f"{where}: missing numeric {field!r}")
        if not isinstance(run.get("dispatch"), dict):
            problems.append(f"{where}: missing dispatch block")
    scaling = cluster.get("scaling")
    if not isinstance(scaling, dict):
        problems.append("cluster: missing scaling block")
    else:
        for field in ("baseline_workers", "workers"):
            if not isinstance(scaling.get(field), int):
                problems.append(f"cluster.scaling: missing integer {field!r}")
        speedup = scaling.get("speedup")
        if speedup is not None and not _is_number(speedup):
            problems.append("cluster.scaling: speedup must be numeric or null")
    parity = cluster.get("parity")
    if not isinstance(parity, dict):
        problems.append("cluster: missing parity block")
    else:
        if not isinstance(parity.get("ok"), bool):
            problems.append("cluster.parity: missing ok flag")
        if not isinstance(parity.get("mismatches"), int):
            problems.append("cluster.parity: missing integer 'mismatches'")


def _check_session_block(session: object, problems: List[str]) -> None:
    """Schema of the incremental-session block (schema_version >= 4)."""
    if not isinstance(session, dict):
        problems.append("session must be an object or null")
        return
    for field in ("documents", "chunks", "increments"):
        if not isinstance(session.get(field), int):
            problems.append(f"session: missing integer {field!r}")
    if session.get("mode") not in ("full", "scoped"):
        problems.append(
            f"session: mode must be 'full' or 'scoped', "
            f"got {session.get('mode')!r}"
        )
    for field in ("incremental_latency", "full_relink_latency"):
        _check_stats(session.get(field), f"session.{field}", problems)
    if not _is_number(session.get("amortized_speedup")):
        problems.append("session: missing numeric 'amortized_speedup'")
    workload_speedups = session.get("workload_speedups")
    if workload_speedups is not None:
        _check_stats(workload_speedups, "session.workload_speedups", problems)
    memo = session.get("memo")
    if not isinstance(memo, dict):
        problems.append("session: missing memo block")
    else:
        for field in ("hits", "misses"):
            if not isinstance(memo.get(field), int):
                problems.append(f"session.memo: missing integer {field!r}")
    if not isinstance(session.get("solves"), dict):
        problems.append("session: missing solves block")
    parity = session.get("parity")
    if not isinstance(parity, dict):
        problems.append("session: missing parity block")
    else:
        if not isinstance(parity.get("byte_identical"), bool):
            problems.append("session.parity: missing byte_identical flag")
        for field in (
            "entity_f1_one_shot",
            "entity_f1_incremental",
            "relation_f1_one_shot",
            "relation_f1_incremental",
            "max_abs_delta",
            "tolerance",
        ):
            if not _is_number(parity.get(field)):
                problems.append(f"session.parity: missing numeric {field!r}")
        if not isinstance(parity.get("ok"), bool):
            problems.append("session.parity: missing ok flag")


def _check_load_block(load: object, problems: List[str]) -> None:
    """Schema of the load-generator block (``bench --load``)."""
    if not isinstance(load, dict):
        problems.append("load must be an object or null")
        return
    config = load.get("config")
    if not isinstance(config, dict):
        problems.append("load: missing config block")
    elif config.get("mode") not in ("closed", "open"):
        problems.append(
            f"load: config.mode must be 'closed' or 'open', "
            f"got {config.get('mode')!r}"
        )
    for field in (
        "offered",
        "completed",
        "rejected",
        "errors_5xx",
        "errors_other",
        "degraded",
        "retry_after_missing",
    ):
        if not isinstance(load.get(field), int):
            problems.append(f"load: missing integer {field!r}")
    for field in ("wall_seconds", "goodput_rps", "shed_rate"):
        if not _is_number(load.get(field)):
            problems.append(f"load: missing numeric {field!r}")
    shed = load.get("shed_rate")
    if _is_number(shed) and not 0.0 <= shed <= 1.0:
        problems.append(f"load: shed_rate {shed} outside [0, 1]")
    if not isinstance(load.get("status_counts"), dict):
        problems.append("load: missing status_counts block")
    latency = load.get("latency")
    if latency is not None:
        if not isinstance(latency, dict):
            problems.append("load: latency must be an object or null")
        else:
            for field in (
                "count",
                "mean_seconds",
                "p50_seconds",
                "p95_seconds",
                "p99_seconds",
                "max_seconds",
            ):
                if not _is_number(latency.get(field)):
                    problems.append(f"load.latency: missing numeric {field!r}")
    if isinstance(load.get("completed"), int) and latency is None:
        if load["completed"] > 0:
            problems.append(
                "load: completed > 0 but latency block is null"
            )
