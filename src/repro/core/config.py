"""Configuration of the TENET linker."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class TenetConfig:
    """Knobs of the end-to-end TENET pipeline.

    Attributes
    ----------
    max_candidates:
        Candidate concepts retained per mention (the paper's k; Fig. 6(d)
        finds 3-4 optimal on News).
    tree_weight_bound:
        The bound B on each tree's weight.  ``None`` reproduces the
        paper's setting B = \\|M\\| per document (Sec. 6.1).
    min_prior:
        Candidates with prior below this are dropped during generation
        (cheap noise filter; 0 disables).
    prior_link_threshold:
        A mention whose *selected* link was chosen with local distance
        above this and with no coherence support is reported as
        non-linkable instead — this is how isolated phrases with only
        far-fetched candidates surface as "new concepts".
    max_span_tokens:
        Longest candidate mention considered by the chunker.
    use_fuzzy_candidates:
        Whether to fall back to token-overlap alias lookup when the exact
        lookup yields nothing.
    predicate_similarity_scale:
        Calibration of predicate-involving coherence edges (see
        :func:`repro.core.coherence.build_coherence_graph`).
    prior_distance_floor / prior_distance_curve / coherence_prior_blend:
        The scale calibration between anchor-statistics priors and
        embedding cosines (DESIGN.md §5a): local distances map to
        ``floor + (1-floor)·(1-P)^curve`` and a ``blend`` fraction of
        both endpoints' local distances is added to concept edges.
    coherence_max_neighbours:
        kNN sparsification of the coherence graph: each candidate keeps
        only this many lightest admissible concept edges (``None`` for
        the dense graph; quality-neutral per the ablation).
    coherence_similarity_mode:
        ``"batch"`` (default) builds concept-concept edges from one
        ``E @ E.T`` similarity block; ``"scalar"`` uses the per-pair
        reference path (parity tests and the benchmark harness only —
        output is identical, just slower).
    use_canopies:
        Ablation switch for the Sec. 5.1 mention-group/canopy machinery;
        off, every extracted span competes as its own singleton group.
    use_type_filter:
        Enables KB-driven mention typing (Sec. 3 Step 1's type filter)
        via :class:`repro.nlp.ner.MentionTyper`.
    cover_mode:
        Which disambiguation path the linker runs.  ``"exact"`` is the
        paper's full pipeline (prune -> contract -> Kruskal -> decompose
        -> split -> subtree matching, then the greedy scan over the
        cover).  ``"fast"`` skips the tree cover entirely and runs the
        same greedy scan pairwise over the whole coherence graph — the
        Pair-Linking strategy the paper benchmarks against, much cheaper
        but without the cover's coherence-relaxation guarantees.
        ``"auto"`` routes per document: low-ambiguity documents (few
        canopies, few candidates per mention — where the cover rarely
        changes the answer) take the fast path, the rest the exact one.
    fast_max_canopies / fast_max_mean_candidates:
        The ``"auto"`` router's thresholds: a document is routed fast
        only when its canopy count is at most ``fast_max_canopies`` AND
        its mean candidate count per mention is at most
        ``fast_max_mean_candidates``.
    """

    max_candidates: int = 4
    tree_weight_bound: Optional[float] = None
    min_prior: float = 0.0
    prior_link_threshold: float = 0.95
    max_span_tokens: int = 8
    use_fuzzy_candidates: bool = False
    predicate_similarity_scale: float = 0.75
    prior_distance_floor: float = 0.62
    coherence_prior_blend: float = 0.06
    prior_distance_curve: float = 0.5
    coherence_max_neighbours: Optional[int] = 12
    coherence_similarity_mode: str = "batch"
    use_canopies: bool = True
    use_type_filter: bool = False
    cover_mode: str = "exact"
    fast_max_canopies: int = 6
    fast_max_mean_candidates: float = 2.5

    def __post_init__(self) -> None:
        if self.max_candidates < 1:
            raise ValueError(f"max_candidates must be >= 1, got {self.max_candidates}")
        if self.cover_mode not in ("exact", "fast", "auto"):
            raise ValueError(
                "cover_mode must be 'exact', 'fast', or 'auto', "
                f"got {self.cover_mode!r}"
            )
        if self.fast_max_canopies < 0:
            raise ValueError(
                f"fast_max_canopies must be >= 0, got {self.fast_max_canopies}"
            )
        if self.fast_max_mean_candidates < 0:
            raise ValueError(
                "fast_max_mean_candidates must be >= 0, "
                f"got {self.fast_max_mean_candidates}"
            )
        if self.coherence_similarity_mode not in ("batch", "scalar"):
            raise ValueError(
                "coherence_similarity_mode must be 'batch' or 'scalar', "
                f"got {self.coherence_similarity_mode!r}"
            )
        if self.tree_weight_bound is not None and self.tree_weight_bound <= 0:
            raise ValueError(
                f"tree_weight_bound must be positive, got {self.tree_weight_bound}"
            )
        if not 0.0 <= self.min_prior <= 1.0:
            raise ValueError(f"min_prior must be in [0, 1], got {self.min_prior}")
