"""The end-to-end TENET linker facade.

``TenetLinker.link(text)`` runs the full pipeline of the paper:
extraction -> candidate generation -> knowledge coherence graph ->
minimum-cost rooted tree cover -> mention groups/canopies -> greedy
disambiguation -> linked entities, linked predicates, and non-linkable
(isolated / new) concepts.

:class:`LinkingContext` bundles the shared substrate (KB, alias index,
embeddings, extraction pipeline) so that TENET and every baseline link
over identical inputs, as in the paper's experimental setup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.candidates import CandidateGenerator, MentionCandidates
from repro.core.canopies import Canopy, MentionGroup, build_mention_groups
from repro.core.coherence import CandidateNode, CoherenceGraph, build_coherence_graph
from repro.core.config import TenetConfig
from repro.core.deadline import Deadline, DeadlineExceeded, PartialLinking
from repro.core.disambiguation import (
    DisambiguationResult,
    disambiguate,
    disambiguate_pairwise,
)
from repro.core.result import Link, LinkingResult
from repro.core.tree_cover import TreeCoverResult, derive_tree_cover
from repro.embeddings.similarity import SimilarityIndex
from repro.embeddings.store import EmbeddingStore
from repro.embeddings.trainer import EmbeddingTrainer, TrainerConfig
from repro.kb.alias_index import AliasIndex
from repro.kb.store import KnowledgeBase
from repro.kb.types import DEFAULT_TAXONOMY, TypeTaxonomy
from repro.nlp.pipeline import DocumentExtraction, ExtractionPipeline
from repro.nlp.spans import Span, SpanKind
from repro.obs.trace import Trace


@dataclass
class LinkingContext:
    """Shared substrate: one per KB, reused across documents and systems."""

    kb: KnowledgeBase
    alias_index: AliasIndex
    embeddings: EmbeddingStore
    taxonomy: TypeTaxonomy = field(default_factory=lambda: DEFAULT_TAXONOMY)

    @classmethod
    def build(
        cls,
        kb: KnowledgeBase,
        taxonomy: Optional[TypeTaxonomy] = None,
        trainer_config: TrainerConfig = TrainerConfig(),
    ) -> "LinkingContext":
        """Index the KB and train embeddings (the offline preparation)."""
        taxonomy = taxonomy or DEFAULT_TAXONOMY
        alias_index = AliasIndex.from_kb(kb, taxonomy)
        embeddings = EmbeddingTrainer(kb, trainer_config).train()
        return cls(kb, alias_index, embeddings, taxonomy)

    def save(self, directory) -> None:
        """Persist the context (KB dump + embeddings) to *directory*.

        The alias index is rebuilt on load — it is derived data and
        cheaper to regenerate than to serialise.
        """
        from pathlib import Path

        from repro.kb.dump import save_dump

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        save_dump(self.kb, directory / "kb.json")
        self.embeddings.save(directory / "embeddings")

    @classmethod
    def load(cls, directory, taxonomy: Optional[TypeTaxonomy] = None):
        """Load a context previously written by :meth:`save`.

        Embeddings are memory-mapped, the access pattern the paper uses
        to serve PyTorch-BigGraph vectors at link time.
        """
        from pathlib import Path

        from repro.kb.dump import load_dump

        directory = Path(directory)
        kb = load_dump(directory / "kb.json")
        embeddings = EmbeddingStore.load(directory / "embeddings")
        taxonomy = taxonomy or DEFAULT_TAXONOMY
        alias_index = AliasIndex.from_kb(kb, taxonomy)
        return cls(kb, alias_index, embeddings, taxonomy)


@dataclass
class LinkingDiagnostics:
    """Intermediate artefacts of one linking run (for tests and Fig. 7)."""

    extraction: DocumentExtraction
    candidates: MentionCandidates
    coherence: CoherenceGraph
    # None when the document was routed to the pairwise fast path (the
    # tree-cover stage is skipped entirely in that mode).
    cover: Optional[TreeCoverResult]
    groups: List[MentionGroup]
    disambiguation: DisambiguationResult
    result: LinkingResult
    elapsed_seconds: float = 0.0
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def mention_count(self) -> int:
        return len(self.candidates.by_mention)

    @property
    def group_count(self) -> int:
        return len(self.groups)

    @property
    def cover_edge_count(self) -> int:
        return 0 if self.cover is None else self.cover.total_edges


class TenetLinker:
    """Tree-cover-based joint entity and relation linker (the paper)."""

    name = "TENET"

    def __init__(
        self,
        context: LinkingContext,
        config: TenetConfig = TenetConfig(),
    ) -> None:
        self.context = context
        self.config = config
        self.pipeline = ExtractionPipeline(
            context.alias_index,
            max_span_tokens=config.max_span_tokens,
            infer_types=config.use_type_filter,
        )
        self.generator = CandidateGenerator(
            context.alias_index,
            max_candidates=config.max_candidates,
            min_prior=config.min_prior,
            use_fuzzy=config.use_fuzzy_candidates,
        )
        self.similarity = SimilarityIndex(context.embeddings)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def link(
        self,
        text: str,
        deadline: Optional[Deadline] = None,
        trace: Optional[Trace] = None,
    ) -> LinkingResult:
        """Link one document end to end.

        With a *deadline*, each stage boundary (and the inner loops of
        the tree-cover solve and the greedy disambiguation) checks the
        token and raises :class:`~repro.core.deadline.DeadlineExceeded`
        carrying the salvageable partial artefacts.  With a *trace*,
        each stage records a span carrying the stage's wall clock (the
        same measurement stored in ``result.stage_seconds``) and its
        size attributes (mention/candidate counts, graph sizes).
        """
        return self.link_detailed(text, deadline=deadline, trace=trace).result

    def link_detailed(
        self,
        text: str,
        deadline: Optional[Deadline] = None,
        trace: Optional[Trace] = None,
    ) -> LinkingDiagnostics:
        """Link one document, returning every intermediate artefact.

        Per-stage wall-clock timings are recorded once here (and in
        :meth:`_link_candidates`) and attached to both the diagnostics
        and ``result.stage_seconds`` — the single source of truth that
        ``eval/timing.py``, the serving layer's metrics, and the trace
        spans read; a span's duration IS the stage timing, so the two
        can never drift apart.
        """
        timings: Dict[str, float] = {}
        started = time.perf_counter()
        extraction: Optional[DocumentExtraction] = None
        candidates: Optional[MentionCandidates] = None
        try:
            if deadline is not None:
                deadline.check("extract")
            extraction = self.pipeline.extract(text)
            timings["extract"] = time.perf_counter() - started
            if trace is not None:
                trace.record(
                    "extract",
                    timings["extract"],
                    words=extraction.word_count,
                    noun_spans=len(extraction.noun_spans),
                    relation_spans=len(extraction.relation_spans),
                )
            if deadline is not None:
                deadline.check("candidates")
            stage = time.perf_counter()
            candidates = self.generator.generate(extraction)
            timings["candidates"] = time.perf_counter() - stage
            if trace is not None:
                trace.record(
                    "candidates",
                    timings["candidates"],
                    mentions=len(candidates.by_mention),
                    total_candidates=candidates.total_candidates,
                )
            diagnostics = self._link_candidates(
                extraction,
                candidates,
                timings=timings,
                deadline=deadline,
                trace=trace,
            )
        except DeadlineExceeded as exc:
            # Attach whatever is salvageable so the caller can build a
            # degraded answer without recomputing the finished stages.
            if exc.partial is None:
                exc.partial = PartialLinking(extraction, candidates, dict(timings))
            if trace is not None:
                trace.mark_aborted(exc.stage)
            raise
        diagnostics.elapsed_seconds = time.perf_counter() - started
        timings["total"] = diagnostics.elapsed_seconds
        diagnostics.stage_seconds = timings
        diagnostics.result.stage_seconds = dict(timings)
        if trace is not None:
            trace.record("total", timings["total"])
        return diagnostics

    def link_prior_only(
        self, text: str, trace: Optional[Trace] = None
    ) -> LinkingResult:
        """Fast degraded linking: extraction + top-prior candidate only.

        Skips the coherence graph, tree cover, and greedy disambiguation
        entirely — each mention commits to its highest-prior candidate
        unless that candidate's local distance exceeds the non-linkable
        threshold.  The serving layer uses this as the graceful
        fallback when a request exceeds its deadline.
        """
        timings: Dict[str, float] = {}
        started = time.perf_counter()
        extraction = self.pipeline.extract(text)
        timings["extract"] = time.perf_counter() - started
        if trace is not None:
            trace.record("extract", timings["extract"],
                         words=extraction.word_count)
        stage = time.perf_counter()
        candidates = self.generator.generate(extraction)
        timings["candidates"] = time.perf_counter() - stage
        if trace is not None:
            trace.record("candidates", timings["candidates"],
                         mentions=len(candidates.by_mention))
        result = self.prior_only_from_candidates(
            candidates, timings=timings, trace=trace
        )
        result.stage_seconds["total"] = time.perf_counter() - started
        return result

    def prior_only_from_candidates(
        self,
        candidates: MentionCandidates,
        timings: Optional[Dict[str, float]] = None,
        trace: Optional[Trace] = None,
    ) -> LinkingResult:
        """The prior-only answer for already-generated *candidates*.

        This is the tail of :meth:`link_prior_only` split out so a
        cancelled full run can be degraded from its partial state — the
        extraction and candidate generation it already paid for are
        reused instead of recomputed.  Given the same candidates, the
        links are identical to :meth:`link_prior_only`'s.
        """
        timings = {} if timings is None else dict(timings)
        stage = time.perf_counter()
        result = LinkingResult()
        for mention, hits in candidates.by_mention.items():
            best = hits[0] if hits else None
            if best is None or best.local_distance > self.config.prior_link_threshold:
                result.non_linkable.append(mention)
                continue
            link = Link(mention, best.concept_id, score=best.prior)
            if mention.kind is SpanKind.NOUN and best.kind == "entity":
                result.entity_links.append(link)
            elif mention.kind is SpanKind.RELATION and best.kind == "predicate":
                result.relation_links.append(link)
            else:
                result.non_linkable.append(mention)
        result.entity_links.sort(key=lambda l: l.span.token_start)
        result.relation_links.sort(key=lambda l: l.span.token_start)
        result.non_linkable.sort(key=lambda s: s.token_start)
        timings["prior_only"] = time.perf_counter() - stage
        if trace is not None:
            trace.record(
                "prior_only",
                timings["prior_only"],
                entity_links=len(result.entity_links),
                relation_links=len(result.relation_links),
                non_linkable=len(result.non_linkable),
            )
        result.stage_seconds = timings
        return result

    def explain(self, text: str):
        """Link *text* and return (result, explanations).

        ``explanations`` maps each linked mention span to a
        :class:`~repro.core.disambiguation.LinkExplanation` describing
        the committing evidence — whether the decision came from a
        coherence edge (and with which anchor concept) or from the
        mention's own prior.
        """
        diagnostics = self.link_detailed(text)
        return diagnostics.result, diagnostics.disambiguation.provenance

    def disambiguate_mentions(
        self, text: str, mentions: Sequence[Span]
    ) -> LinkingResult:
        """Entity/predicate disambiguation with mentions given as input.

        This is the Fig. 6(b) evaluation mode: mention detection is
        bypassed, each provided span forms its own singleton group, and
        only the coherence machinery decides the links.
        """
        by_mention = {}
        for span in mentions:
            if span.kind is SpanKind.NOUN:
                by_mention[span] = self.generator.entity_candidates(span)
            else:
                by_mention[span] = self.generator.predicate_candidates(span)
        candidates = MentionCandidates(by_mention)
        coherence = build_coherence_graph(
            by_mention,
            self.similarity,
            predicate_similarity_scale=self.config.predicate_similarity_scale,
            prior_distance_floor=self.config.prior_distance_floor,
            coherence_prior_blend=self.config.coherence_prior_blend,
            prior_distance_curve=self.config.prior_distance_curve,
            max_neighbours=self.config.coherence_max_neighbours,
            similarity_mode=self.config.coherence_similarity_mode,
        )
        cover = derive_tree_cover(coherence, self.config.tree_weight_bound)
        # In disambiguation-only mode every provided mention is its own
        # singleton group: mention selection is out of scope by design.
        groups = [
            MentionGroup(i, (span,), (Canopy((span,)),))
            for i, span in enumerate(by_mention)
        ]
        disambiguation = disambiguate(
            cover,
            groups,
            self.config.prior_link_threshold,
            extra_edges=self._shared_edges(coherence, cover.bound),
        )
        return self._to_result(disambiguation, candidates)

    def _shared_edges(self, coherence: CoherenceGraph, bound: float):
        """Edges every mention's own tree contributes to the shared pool.

        Definition 6 lets trees share nodes and edges and Sec. 4's
        intuition says each tree T_i holds "all the nodes within a small
        semantic distance" to its mention; the materialised cover keeps
        one representative tree per component, so here we re-add, for
        each mention, (a) its surviving prior edges and (b) each of its
        candidates' single nearest coherence edge — the closest related
        node that T_i would contain.
        """
        edges = []
        graph = coherence.graph
        for mention, nodes in coherence.candidates_by_mention.items():
            for node in nodes:
                weight = graph.get_weight(mention, node)
                if weight is not None and weight <= bound:
                    edges.append((mention, node, weight))
                # For each *other* mention, this candidate's closest edge
                # into that mention's candidate set — the per-pair nearest
                # relatedness T_i would retain.
                best: dict = {}
                for neighbour, w in graph.neighbours(node).items():
                    if not isinstance(neighbour, CandidateNode):
                        continue
                    key = neighbour.mention
                    current = best.get(key)
                    if current is None or w < current[1]:
                        best[key] = (neighbour, w)
                for neighbour, w in best.values():
                    if w <= bound:
                        edges.append((node, neighbour, w))
        return edges

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _link_candidates(
        self,
        extraction: DocumentExtraction,
        candidates: MentionCandidates,
        timings: Optional[Dict[str, float]] = None,
        deadline: Optional[Deadline] = None,
        trace: Optional[Trace] = None,
    ) -> LinkingDiagnostics:
        if timings is None:
            timings = {}
        if deadline is not None:
            deadline.check("coherence")
        stage = time.perf_counter()
        # No pair-cache precompute here: build_coherence_graph consumes
        # the batched similarity matrix directly, so filling the scalar
        # pair cache first would re-add the O(n^2) Python loop the
        # batched path removed from this stage.
        coherence = build_coherence_graph(
            candidates.by_mention,
            self.similarity,
            predicate_similarity_scale=self.config.predicate_similarity_scale,
            prior_distance_floor=self.config.prior_distance_floor,
            coherence_prior_blend=self.config.coherence_prior_blend,
            prior_distance_curve=self.config.prior_distance_curve,
            max_neighbours=self.config.coherence_max_neighbours,
            similarity_mode=self.config.coherence_similarity_mode,
        )
        timings["coherence"] = time.perf_counter() - stage
        if trace is not None:
            trace.record(
                "coherence",
                timings["coherence"],
                nodes=coherence.graph.node_count,
                edges=coherence.graph.edge_count,
                mentions=coherence.mention_count,
            )
        # Grouping runs before the tree cover so the "auto" router can
        # see the canopy count before committing to the expensive path.
        if deadline is not None:
            deadline.check("grouping")
        stage = time.perf_counter()
        if self.config.use_canopies:
            groups = build_mention_groups(
                extraction.tokens,
                extraction.noun_spans,
                extraction.relation_spans,
                has_candidates=lambda span: bool(candidates.by_mention.get(span)),
            )
        else:
            # Ablation: no mention groups/canopies — every span competes
            # as its own singleton group; only the greedy overlap pruning
            # arbitrates between overlapping readings.
            groups = [
                MentionGroup(i, (span,), (Canopy((span,)),))
                for i, span in enumerate(
                    extraction.noun_spans + extraction.relation_spans
                )
            ]
        timings["grouping"] = time.perf_counter() - stage
        if trace is not None:
            trace.record("grouping", timings["grouping"], groups=len(groups))
        routed_fast = self._route_fast(coherence, groups)
        if routed_fast:
            # Fast path: pairwise greedy collective disambiguation (the
            # Pair-Linking strategy) over the full coherence graph —
            # prune/contract/Kruskal/decompose/split/matching all skipped.
            cover: Optional[TreeCoverResult] = None
            timings["tree_cover"] = 0.0
            if trace is not None:
                trace.record("tree_cover", 0.0, cover_edges=0, mode="fast")
            if deadline is not None:
                deadline.check("disambiguation")
            stage = time.perf_counter()
            disambiguation = disambiguate_pairwise(
                coherence,
                groups,
                self.config.prior_link_threshold,
                deadline=deadline,
            )
        else:
            if deadline is not None:
                deadline.check("tree_cover")
            stage = time.perf_counter()
            cover = derive_tree_cover(
                coherence, self.config.tree_weight_bound, deadline=deadline
            )
            timings["tree_cover"] = time.perf_counter() - stage
            if trace is not None:
                trace.record(
                    "tree_cover", timings["tree_cover"],
                    cover_edges=cover.total_edges,
                )
            if deadline is not None:
                deadline.check("disambiguation")
            stage = time.perf_counter()
            disambiguation = disambiguate(
                cover,
                groups,
                self.config.prior_link_threshold,
                extra_edges=self._shared_edges(coherence, cover.bound),
                deadline=deadline,
            )
        timings["disambiguation"] = time.perf_counter() - stage
        result = self._to_result(disambiguation, candidates)
        result.cover_mode = "fast" if routed_fast else "exact"
        if trace is not None:
            trace.record(
                "disambiguation",
                timings["disambiguation"],
                entity_links=len(result.entity_links),
                relation_links=len(result.relation_links),
                non_linkable=len(result.non_linkable),
                mode=result.cover_mode,
            )
        return LinkingDiagnostics(
            extraction=extraction,
            candidates=candidates,
            coherence=coherence,
            cover=cover,
            groups=groups,
            disambiguation=disambiguation,
            result=result,
        )

    def _route_fast(
        self, coherence: CoherenceGraph, groups: List[MentionGroup]
    ) -> bool:
        """Decide whether this document takes the pairwise fast path.

        ``"auto"`` sends a document fast only when it is short AND
        low-ambiguity: few canopies (little structural ambiguity for the
        cover to arbitrate) and few candidates per mention (little
        lexical ambiguity for coherence relaxation to resolve).  On such
        documents the tree cover almost never changes the greedy scan's
        answer, so skipping it trades nothing measurable for the
        pipeline's dominant cost.
        """
        mode = self.config.cover_mode
        if mode == "exact":
            return False
        if mode == "fast":
            return True
        canopy_count = sum(len(group.canopies) for group in groups)
        if canopy_count > self.config.fast_max_canopies:
            return False
        mentions = coherence.mention_count
        if mentions == 0:
            return True
        mean_candidates = coherence.concept_node_count / mentions
        return mean_candidates <= self.config.fast_max_mean_candidates

    def _to_result(
        self,
        disambiguation: DisambiguationResult,
        candidates: MentionCandidates,
    ) -> LinkingResult:
        result = LinkingResult(non_linkable=list(disambiguation.non_linkable))
        for mention, node in disambiguation.gamma.items():
            prior = _prior_of(candidates, mention, node.concept_id)
            link = Link(mention, node.concept_id, score=prior)
            if mention.kind is SpanKind.NOUN and node.kind == "entity":
                result.entity_links.append(link)
            elif mention.kind is SpanKind.RELATION and node.kind == "predicate":
                result.relation_links.append(link)
        result.entity_links.sort(key=lambda l: l.span.token_start)
        result.relation_links.sort(key=lambda l: l.span.token_start)
        return result


def _prior_of(
    candidates: MentionCandidates, mention: Span, concept_id: str
) -> float:
    for hit in candidates.candidates(mention):
        if hit.concept_id == concept_id:
            return hit.prior
    return 0.0
