"""Coherence tree cover derivation (the paper's Algorithm 1).

Given the knowledge coherence graph and a bound B, derive an M-rooted
coherence tree cover of cost at most 4B, or fail with
:class:`BoundTooSmallError` when B is infeasible:

(a) prune edges heavier than B;
(b) contract all mention nodes into a major root r (edge ``(r, c)`` takes
    the weight of c's own mention edge);
(c) Kruskal MST over the contracted graph — disconnection means B is too
    small;
(d) decompose r back into the mentions: every component of MST - r hangs
    off r through exactly one edge (the MST is acyclic), and that edge's
    candidate node identifies the owning mention;
(e) split each mention tree into a leftover (<= B, contains the mention)
    and subtrees in (B, 2B] (:mod:`repro.core.splitting`);
(f) assign subtrees to mentions by Hopcroft--Karp maximum matching, where
    a mention may adopt a subtree whose pruned-graph distance from it lies
    in (0, B]; each adopted subtree is connected through that shortest
    path.  An unmatched subtree again means B is too small.

The paper sets B = |M| for linking (Sec. 6.1) — with distances bounded by
1 this never fails; small explicit bounds exercise the failure path and
the binary search (:func:`minimal_feasible_bound`).

Steps (a)-(d) run over :class:`_CoverScaffold`, a flat integer-id edge
array built once per coherence graph: pruning is a numpy mask, the
contraction is implicit in how the arrays are laid out, and Kruskal runs
over a precomputed deterministic edge order with an integer union-find.
The object-graph reference implementation of steps (b) and (d)
(:func:`_contract` / :func:`_decompose`) is retained — the scaffold
reproduces its exact edge sequences (stream order, orientation and
repr tie-breaking included), so the derived cover is byte-identical;
the internals test suite pins the two against each other.  Step (f)
still builds the real pruned graph, but only lazily, in the rare case a
split actually produced leftover subtrees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.coherence import CandidateNode, CoherenceGraph
from repro.core.deadline import Deadline
from repro.core.splitting import split_tree
from repro.graph.matching import hopcroft_karp
from repro.graph.mst import CHECK_EVERY as MST_CHECK_EVERY
from repro.graph.mst import minimum_spanning_forest
from repro.graph.paths import dijkstra
from repro.graph.tree import RootedTree
from repro.graph.weighted_graph import WeightedGraph
from repro.nlp.spans import Span

# Sentinel for the contracted major root node of Step (b).
MAJOR_ROOT = ("__tenet_major_root__",)


class BoundTooSmallError(ValueError):
    """Raised when no tree cover of cost <= 4B exists for the given B."""


@dataclass
class TreeCoverResult:
    """An M-rooted coherence tree cover."""

    trees: Dict[Span, RootedTree]
    bound: float
    subtree_count: int = 0

    def cost(self) -> float:
        """The paper's cover cost: the maximum tree weight."""
        if not self.trees:
            return 0.0
        return max(tree.weight() for tree in self.trees.values())

    def tree_for(self, mention: Span) -> RootedTree:
        return self.trees[mention]

    @property
    def total_edges(self) -> int:
        return sum(tree.edge_count for tree in self.trees.values())

    def isolated_mentions(self) -> List[Span]:
        """Mentions whose tree is a singleton (no coherent candidates)."""
        return [m for m, tree in self.trees.items() if tree.is_singleton()]

    def statistics(self) -> "CoverStatistics":
        """Structural summary of the cover (for diagnostics/analysis)."""
        sizes = sorted(
            (tree.node_count for tree in self.trees.values()), reverse=True
        )
        return CoverStatistics(
            tree_count=len(self.trees),
            singleton_count=len(self.isolated_mentions()),
            total_edges=self.total_edges,
            max_tree_weight=self.cost(),
            largest_tree_nodes=sizes[0] if sizes else 0,
            bound=self.bound,
            subtree_count=self.subtree_count,
        )


@dataclass(frozen=True)
class CoverStatistics:
    """Structural summary of an M-rooted tree cover."""

    tree_count: int
    singleton_count: int
    total_edges: int
    max_tree_weight: float
    largest_tree_nodes: int
    bound: float
    subtree_count: int

    @property
    def isolation_rate(self) -> float:
        """Fraction of mentions standing alone — the sparse-coherence
        signature the paper's relaxation is designed for."""
        return (
            self.singleton_count / self.tree_count if self.tree_count else 0.0
        )


def derive_tree_cover(
    coherence: CoherenceGraph,
    bound: Optional[float] = None,
    deadline: Optional[Deadline] = None,
) -> TreeCoverResult:
    """Run Algorithm 1 on *coherence* with bound B.

    ``bound=None`` applies the paper's default B = |M|.  With a
    *deadline*, the Kruskal edge loop and the per-mention shortest-path
    sweep of step (f) — the two loops that dominate the solve — check
    the token cooperatively and raise
    :class:`~repro.core.deadline.DeadlineExceeded` on expiry.
    """
    if bound is None:
        bound = float(max(len(coherence.mentions), 1))
    if bound <= 0:
        raise ValueError(f"bound must be positive, got {bound}")
    scaffold = _CoverScaffold(coherence)
    return _derive_with_scaffold(coherence, scaffold, bound, deadline)


# ---------------------------------------------------------------------------
# the integer-id scaffold
# ---------------------------------------------------------------------------

class _CoverScaffold:
    """Flat edge arrays for steps (a)-(d), built once per coherence graph.

    Node ids: 0 is :data:`MAJOR_ROOT`, 1..n the candidate nodes in
    ``candidates_by_mention`` iteration order.  The edge arrays hold the
    contracted graph of Step (b) in the exact sequence and orientation
    its :class:`~repro.graph.weighted_graph.WeightedGraph` form would
    emit from ``edges()`` (root edges in candidate-id order, then
    candidate-candidate edges grouped by lower-id endpoint in
    edge-stream order), and ``sorted_order`` is the Kruskal ordering —
    non-decreasing weight, endpoint reprs breaking ties, stable over
    that emission sequence.  Everything here is bound-independent:
    Step (a) is a weight mask, so one scaffold serves every probe of
    the minimal-bound binary search.
    """

    def __init__(self, coherence: CoherenceGraph, sort: bool = True) -> None:
        cand_ids: Dict[CandidateNode, int] = {}
        cands: List[CandidateNode] = []
        owners: List[Span] = []
        for mention, nodes in coherence.candidates_by_mention.items():
            for node in nodes:
                cand_ids[node] = len(cands) + 1
                cands.append(node)
                owners.append(mention)
        self.cands = cands
        self.owners = owners
        reprs = [repr(MAJOR_ROOT)]
        reprs.extend(repr(node) for node in cands)
        self.reprs = reprs

        graph = coherence.graph
        edge_u: List[int] = []
        edge_v: List[int] = []
        edge_w: List[float] = []
        # Root edges of the contraction: candidate <-> major root with
        # the weight of the candidate's own mention edge, in id order.
        for node, mention in zip(cands, owners):
            weight = graph.get_weight(mention, node)
            if weight is not None:
                edge_u.append(0)
                edge_v.append(cand_ids[node])
                edge_w.append(weight)
        # Candidate-candidate edges.  The filtered edge stream of the
        # coherence graph is exactly what the pruned copy would emit;
        # the contracted graph re-emits it grouped by the lower-id
        # endpoint with stream order within each group, which a stable
        # sort on the lower id reproduces.
        stream: List[Tuple[int, int, float]] = []
        for u, v, w in graph.edges():
            iu = cand_ids.get(u)
            if iu is None:
                continue
            iv = cand_ids.get(v)
            if iv is None:
                continue
            stream.append((iu, iv, w) if iu < iv else (iv, iu, w))
        stream.sort(key=lambda e: e[0])
        for lo, hi, w in stream:
            edge_u.append(lo)
            edge_v.append(hi)
            edge_w.append(w)
        self.edge_u = edge_u
        self.edge_v = edge_v
        self.weights = np.asarray(edge_w, dtype=np.float64)
        # The deterministic Kruskal order, computed once.  Filtering a
        # stably sorted sequence equals sorting the filtered sequence,
        # so a bound never needs a re-sort — only the mask.
        # ``sort=False`` defers the ordering so :func:`delta_scaffold`
        # can derive it from a previous scaffold by merge instead.
        if sort:
            self.sorted_order = sorted(
                range(len(edge_w)),
                key=lambda k: (edge_w[k], reprs[edge_u[k]], reprs[edge_v[k]]),
            )
        else:
            self.sorted_order = []

    def edge_key(self, k: int) -> Tuple[float, str, str]:
        """The Kruskal sort key of edge *k* (also its identity key)."""
        return (
            float(self.weights[k]),
            self.reprs[self.edge_u[k]],
            self.reprs[self.edge_v[k]],
        )

    @property
    def node_count(self) -> int:
        """Contracted node count: the major root plus every candidate."""
        return len(self.cands) + 1

    def connected_within(self, bound: float) -> bool:
        """Whether the contracted graph spans under ``weight <= bound``.

        The cheap feasibility precheck of the binary search: identical
        to the Kruskal disconnection verdict, without deriving trees.
        """
        n = self.node_count
        if n == 1:
            return True
        parent = list(range(n))
        components = n
        in_bound = self.weights <= bound
        for k in np.nonzero(in_bound)[0]:
            ru = _find(parent, self.edge_u[k])
            rv = _find(parent, self.edge_v[k])
            if ru != rv:
                parent[ru] = rv
                components -= 1
                if components == 1:
                    return True
        return components == 1


def build_cover_scaffold(coherence: CoherenceGraph) -> _CoverScaffold:
    """Public constructor for the bound-independent cover scaffold.

    One scaffold serves every bound probe on the same coherence graph;
    :mod:`repro.session` also holds one across increments and advances
    it with :func:`delta_scaffold` instead of rebuilding from scratch.
    """
    return _CoverScaffold(coherence)


def delta_scaffold(
    previous: _CoverScaffold, coherence: CoherenceGraph
) -> _CoverScaffold:
    """Advance a scaffold to a new coherence graph without a full re-sort.

    The edge arrays are rebuilt fresh (linear in the edge count), but the
    Kruskal ``sorted_order`` is derived by *merging* two already-sorted
    sequences instead of sorting everything: the edges that survive from
    *previous* (filtered through its old sorted order) and the newly
    added edges (sorted among themselves).  Because the sort key *is*
    the identity key ``(weight, repr_u, repr_v)`` and equal keys are
    matched between old and new scaffolds in emission order, the merged
    order is byte-identical to the fresh stable sort — pinned by the
    session test suite.  For a streaming increment that adds A edges to
    an E-edge graph this is O(E + A log A) instead of O(E log E).
    """
    scaffold = _CoverScaffold(coherence, sort=False)
    edge_count = len(scaffold.edge_u)
    # New edge indices grouped by identity key, in emission order.
    new_by_key: Dict[Tuple[float, str, str], List[int]] = {}
    for k in range(edge_count):
        new_by_key.setdefault(scaffold.edge_key(k), []).append(k)
    # Walk the previous sorted order and claim matching new edges.  An
    # equal-key run in the old order is contiguous (it is the sort key)
    # and emission-ordered, so a per-key cursor realises the ordered
    # multiset matching that keeps stable-sort ties correct.
    cursors: Dict[Tuple[float, str, str], int] = {}
    survivors: List[int] = []
    matched = [False] * edge_count
    for pk in previous.sorted_order:
        key = previous.edge_key(pk)
        bucket = new_by_key.get(key)
        if bucket is None:
            continue
        cursor = cursors.get(key, 0)
        if cursor >= len(bucket):
            continue
        nk = bucket[cursor]
        cursors[key] = cursor + 1
        survivors.append(nk)
        matched[nk] = True
    added = sorted(
        (k for k in range(edge_count) if not matched[k]),
        key=lambda k: (scaffold.edge_key(k), k),
    )
    # Merge the two sorted runs on (key, emission index) — exactly the
    # comparison a stable sort over the full array resolves ties with.
    merged: List[int] = []
    i = j = 0
    while i < len(survivors) and j < len(added):
        a, b = survivors[i], added[j]
        if (scaffold.edge_key(a), a) <= (scaffold.edge_key(b), b):
            merged.append(a)
            i += 1
        else:
            merged.append(b)
            j += 1
    merged.extend(survivors[i:])
    merged.extend(added[j:])
    scaffold.sorted_order = merged
    return scaffold


def derive_tree_cover_with_scaffold(
    coherence: CoherenceGraph,
    scaffold: _CoverScaffold,
    bound: Optional[float] = None,
    deadline: Optional[Deadline] = None,
) -> TreeCoverResult:
    """Run Algorithm 1 reusing a prebuilt (or delta-advanced) scaffold."""
    if bound is None:
        bound = float(max(len(coherence.mentions), 1))
    if bound <= 0:
        raise ValueError(f"bound must be positive, got {bound}")
    return _derive_with_scaffold(coherence, scaffold, bound, deadline)


def _find(parent: List[int], x: int) -> int:
    """Union-find root with path halving."""
    while parent[x] != x:
        parent[x] = parent[parent[x]]
        x = parent[x]
    return x


def _derive_with_scaffold(
    coherence: CoherenceGraph,
    scaffold: _CoverScaffold,
    bound: float,
    deadline: Optional[Deadline],
) -> TreeCoverResult:
    check = None if deadline is None else (lambda: deadline.check("tree_cover"))

    # Step (a): edge pruning, as a mask over the scaffold's weights.
    in_bound = scaffold.weights <= bound

    # Steps (b)+(c): Kruskal over the (implicitly) contracted graph.
    # The contracted graph may legitimately be missing candidate nodes
    # whose every edge was pruned — that is a failure (the node could
    # never be covered within B), matching the paper's "B is too small"
    # warning for disconnected graphs.
    edge_u, edge_v, weights = scaffold.edge_u, scaffold.edge_v, scaffold.weights
    parent = list(range(scaffold.node_count))
    accepted: List[int] = []
    processed = 0
    for k in scaffold.sorted_order:
        if not in_bound[k]:
            continue
        if check is not None and processed % MST_CHECK_EVERY == 0:
            check()
        processed += 1
        ru = _find(parent, edge_u[k])
        rv = _find(parent, edge_v[k])
        if ru != rv:
            parent[ru] = rv
            accepted.append(k)
    if len(accepted) != scaffold.node_count - 1:
        raise BoundTooSmallError(
            f"contracted coherence graph is disconnected at B={bound}"
        )

    # Step (d): decompose the major root back into mentions.  Root edges
    # graft in Kruskal acceptance order; the forest adjacency replays
    # the edge emission of the MST copy so the repr-sorted DFS of the
    # reference implementation is reproduced tie-for-tie.
    trees: Dict[Span, RootedTree] = {
        mention: RootedTree(mention) for mention in coherence.mentions
    }
    root_accepted = [k for k in accepted if edge_u[k] == 0]
    cc_accepted = [k for k in accepted if edge_u[k] != 0]
    cc_accepted.sort(key=lambda k: edge_u[k])
    adjacency: Dict[int, List[Tuple[int, float]]] = {}
    for k in cc_accepted:
        u, v, w = edge_u[k], edge_v[k], float(weights[k])
        adjacency.setdefault(u, []).append((v, w))
        adjacency.setdefault(v, []).append((u, w))
    cands, reprs = scaffold.cands, scaffold.reprs
    for k in root_accepted:
        anchor_id = edge_v[k]
        mention = scaffold.owners[anchor_id - 1]
        tree = trees[mention]
        tree.add_edge(mention, cands[anchor_id - 1], float(weights[k]))
        stack = [anchor_id]
        visited = {anchor_id}
        while stack:
            node_id = stack.pop()
            node = cands[node_id - 1]
            for nbr_id, w in sorted(
                adjacency.get(node_id, ()), key=lambda p: reprs[p[0]]
            ):
                if nbr_id in visited or cands[nbr_id - 1] in tree:
                    continue
                visited.add(nbr_id)
                tree.add_edge(node, cands[nbr_id - 1], w)
                stack.append(nbr_id)

    # Step (e): tree splitting.
    split: Dict[Span, RootedTree] = {}
    leftover_subtrees: List[RootedTree] = []
    for mention, tree in trees.items():
        leftover, subtrees = split_tree(tree, bound)
        split[mention] = leftover
        leftover_subtrees.extend(subtrees)

    if not leftover_subtrees:
        return TreeCoverResult(split, bound, 0)

    # Step (f): maximum matching of subtrees to mentions.  Only now is
    # the real pruned graph needed (for shortest paths), so it is built
    # lazily here instead of eagerly for every derivation.
    pruned = coherence.graph.pruned(bound)
    _attach_subtrees(coherence, pruned, split, leftover_subtrees, bound, check)
    return TreeCoverResult(split, bound, len(leftover_subtrees))


# ---------------------------------------------------------------------------
# object-graph reference steps (pinned against the scaffold by tests)
# ---------------------------------------------------------------------------

def _contract(
    coherence: CoherenceGraph, pruned: WeightedGraph, bound: float
) -> Tuple[WeightedGraph, Dict[CandidateNode, Span]]:
    """Build the contracted graph G' = ({r} u C, ...).

    Each candidate node connects to the root with the weight of its own
    mention edge (if that edge survived pruning); concept-concept edges
    are carried over unchanged.  ``owner`` records which mention each
    root edge decomposes back to.
    """
    contracted = WeightedGraph()
    contracted.add_node(MAJOR_ROOT)
    owner: Dict[CandidateNode, Span] = {}
    for mention, nodes in coherence.candidates_by_mention.items():
        for node in nodes:
            contracted.add_node(node)
            weight = pruned.get_weight(mention, node)
            if weight is not None:
                contracted.add_edge(MAJOR_ROOT, node, weight)
                owner[node] = mention
    for u, v, w in pruned.edges():
        if isinstance(u, CandidateNode) and isinstance(v, CandidateNode):
            contracted.add_edge(u, v, w)
    return contracted, owner


def _decompose(
    coherence: CoherenceGraph,
    mst: WeightedGraph,
    owner: Dict[CandidateNode, Span],
) -> Dict[Span, RootedTree]:
    """Step (d): replace the major root by the mention nodes.

    Every component of MST - r hangs off r through exactly one edge
    (otherwise the MST would contain a cycle), so each component belongs
    to the mention owning that edge.  Mentions with several root edges
    adopt several components; mentions with none keep a singleton tree.
    """
    trees: Dict[Span, RootedTree] = {
        mention: RootedTree(mention) for mention in coherence.mentions
    }
    if MAJOR_ROOT not in mst:
        return trees
    root_edges = list(mst.neighbours(MAJOR_ROOT).items())
    without_root = mst.copy()
    without_root.remove_node(MAJOR_ROOT)
    for anchor, weight in root_edges:
        mention = owner[anchor]
        tree = trees[mention]
        tree.add_edge(mention, anchor, weight)
        _graft_component(tree, without_root, anchor)
    return trees


def _graft_component(
    tree: RootedTree, forest: WeightedGraph, anchor: CandidateNode
) -> None:
    """Copy the forest component reachable from *anchor* into *tree*."""
    stack = [anchor]
    visited = {anchor}
    while stack:
        node = stack.pop()
        for neighbour, weight in sorted(
            forest.neighbours(node).items(), key=lambda kv: repr(kv[0])
        ):
            if neighbour in visited or neighbour in tree:
                continue
            visited.add(neighbour)
            tree.add_edge(node, neighbour, weight)
            stack.append(neighbour)


def derive_tree_cover_reference(
    coherence: CoherenceGraph,
    bound: Optional[float] = None,
    deadline: Optional[Deadline] = None,
) -> TreeCoverResult:
    """Algorithm 1 over the object-graph reference steps.

    The pre-scaffold implementation, kept for the parity tests that pin
    the scaffold's byte-identity: eager pruned copy, explicit contracted
    :class:`WeightedGraph`, object-keyed Kruskal.
    """
    if bound is None:
        bound = float(max(len(coherence.mentions), 1))
    if bound <= 0:
        raise ValueError(f"bound must be positive, got {bound}")
    check = None if deadline is None else (lambda: deadline.check("tree_cover"))

    pruned = coherence.graph.pruned(bound)
    contracted, owner = _contract(coherence, pruned, bound)
    mst = minimum_spanning_forest(contracted, check=check)
    if contracted.node_count > 0 and mst.edge_count != contracted.node_count - 1:
        raise BoundTooSmallError(
            f"contracted coherence graph is disconnected at B={bound}"
        )
    raw_trees = _decompose(coherence, mst, owner)

    trees: Dict[Span, RootedTree] = {}
    leftover_subtrees: List[RootedTree] = []
    for mention, tree in raw_trees.items():
        leftover, subtrees = split_tree(tree, bound)
        trees[mention] = leftover
        leftover_subtrees.extend(subtrees)

    if not leftover_subtrees:
        return TreeCoverResult(trees, bound, 0)
    _attach_subtrees(coherence, pruned, trees, leftover_subtrees, bound, check)
    return TreeCoverResult(trees, bound, len(leftover_subtrees))


def _attach_subtrees(
    coherence: CoherenceGraph,
    pruned: WeightedGraph,
    trees: Dict[Span, RootedTree],
    subtrees: List[RootedTree],
    bound: float,
    check: Optional[Callable[[], None]] = None,
) -> None:
    """Step (f): match subtrees to mentions and graft them via shortest paths."""
    eligibility: Dict[int, List[Span]] = {idx: [] for idx in range(len(subtrees))}
    paths: Dict[Tuple[int, Span], List] = {}
    subtree_node_sets = [subtree.node_set() for subtree in subtrees]
    for mention in coherence.mentions:
        if check is not None:
            check()
        if mention not in pruned:
            continue
        distances, predecessors = dijkstra(pruned, mention, max_distance=bound)
        for idx, subtree_nodes in enumerate(subtree_node_sets):
            best_node = None
            best_dist = None
            for node in subtree_nodes:
                dist = distances.get(node)
                if dist is None or dist <= 0.0:
                    continue
                if best_dist is None or dist < best_dist:
                    best_dist = dist
                    best_node = node
            if best_node is None:
                continue
            eligibility[idx].append(mention)
            path = [best_node]
            while path[-1] != mention:
                path.append(predecessors[path[-1]])
            path.reverse()
            paths[(idx, mention)] = path

    matching = hopcroft_karp(list(eligibility), eligibility)
    if len(matching) < len(subtrees):
        raise BoundTooSmallError(
            f"{len(subtrees) - len(matching)} subtrees cannot be matched to "
            f"any mention within B={bound}"
        )
    for idx, mention in matching.items():
        _merge_into_tree(trees[mention], subtrees[idx], paths[(idx, mention)], pruned)


def _merge_into_tree(
    tree: RootedTree,
    subtree: RootedTree,
    path: List,
    pruned: WeightedGraph,
) -> None:
    """Graft *subtree* onto *tree* through the connecting *path*.

    The merged structure may momentarily contain nodes already present in
    the leftover tree (trees can share nodes); the rebuild keeps the
    result a tree by taking the union graph's spanning structure rooted
    at the mention.
    """
    union = tree.to_graph()
    for i in range(len(path) - 1):
        u, v = path[i], path[i + 1]
        if not union.has_edge(u, v):
            union.add_node(u)
            union.add_node(v)
            union.add_edge(u, v, pruned.weight(u, v))
    for edge in subtree.edges():
        if not union.has_edge(edge.parent, edge.child):
            union.add_node(edge.parent)
            union.add_node(edge.child)
            union.add_edge(edge.parent, edge.child, edge.weight)
    rebuilt = RootedTree.from_graph(union, tree.root)
    tree.adopt(rebuilt)


# ---------------------------------------------------------------------------
# bound search
# ---------------------------------------------------------------------------

def minimal_feasible_bound(
    coherence: CoherenceGraph,
    tolerance: float = 1e-3,
    max_bound: Optional[float] = None,
) -> float:
    """Binary-search the smallest B for which Algorithm 1 succeeds.

    The approximation guarantee then gives a cover of cost at most 4B*
    with B* <= the optimum cover cost.  Used by the ablation benchmarks;
    the production linker keeps the paper's B = |M|.

    One :class:`_CoverScaffold` — the sorted edge array, cached reprs
    and union-find id space — is shared by every probe: each probe
    first runs a connectivity check over the masked edges (the common
    infeasibility), and only a probe that passes it derives the full
    cover (which can still fail in subtree matching).
    """
    if max_bound is None:
        max_bound = max(float(len(coherence.mentions)), 1.0)
    scaffold = _CoverScaffold(coherence)
    lo, hi = 0.0, max_bound
    if not _feasible(coherence, scaffold, hi):
        raise BoundTooSmallError(
            f"no feasible bound up to max_bound={max_bound}"
        )
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if mid <= 0.0:
            break
        if _feasible(coherence, scaffold, mid):
            hi = mid
        else:
            lo = mid
    return hi


def _feasible(
    coherence: CoherenceGraph, scaffold: _CoverScaffold, bound: float
) -> bool:
    if not scaffold.connected_within(bound):
        return False
    try:
        _derive_with_scaffold(coherence, scaffold, bound, None)
        return True
    except BoundTooSmallError:
        return False
