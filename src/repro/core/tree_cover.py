"""Coherence tree cover derivation (the paper's Algorithm 1).

Given the knowledge coherence graph and a bound B, derive an M-rooted
coherence tree cover of cost at most 4B, or fail with
:class:`BoundTooSmallError` when B is infeasible:

(a) prune edges heavier than B;
(b) contract all mention nodes into a major root r (edge ``(r, c)`` takes
    the weight of c's own mention edge);
(c) Kruskal MST over the contracted graph — disconnection means B is too
    small;
(d) decompose r back into the mentions: every component of MST - r hangs
    off r through exactly one edge (the MST is acyclic), and that edge's
    candidate node identifies the owning mention;
(e) split each mention tree into a leftover (<= B, contains the mention)
    and subtrees in (B, 2B] (:mod:`repro.core.splitting`);
(f) assign subtrees to mentions by Hopcroft--Karp maximum matching, where
    a mention may adopt a subtree whose pruned-graph distance from it lies
    in (0, B]; each adopted subtree is connected through that shortest
    path.  An unmatched subtree again means B is too small.

The paper sets B = |M| for linking (Sec. 6.1) — with distances bounded by
1 this never fails; small explicit bounds exercise the failure path and
the binary search (:func:`minimal_feasible_bound`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.coherence import CandidateNode, CoherenceGraph
from repro.core.deadline import Deadline
from repro.core.splitting import split_tree
from repro.graph.matching import hopcroft_karp
from repro.graph.mst import minimum_spanning_forest
from repro.graph.paths import dijkstra
from repro.graph.tree import RootedTree
from repro.graph.weighted_graph import WeightedGraph
from repro.nlp.spans import Span

# Sentinel for the contracted major root node of Step (b).
MAJOR_ROOT = ("__tenet_major_root__",)


class BoundTooSmallError(ValueError):
    """Raised when no tree cover of cost <= 4B exists for the given B."""


@dataclass
class TreeCoverResult:
    """An M-rooted coherence tree cover."""

    trees: Dict[Span, RootedTree]
    bound: float
    subtree_count: int = 0

    def cost(self) -> float:
        """The paper's cover cost: the maximum tree weight."""
        if not self.trees:
            return 0.0
        return max(tree.weight() for tree in self.trees.values())

    def tree_for(self, mention: Span) -> RootedTree:
        return self.trees[mention]

    @property
    def total_edges(self) -> int:
        return sum(tree.edge_count for tree in self.trees.values())

    def isolated_mentions(self) -> List[Span]:
        """Mentions whose tree is a singleton (no coherent candidates)."""
        return [m for m, tree in self.trees.items() if tree.is_singleton()]

    def statistics(self) -> "CoverStatistics":
        """Structural summary of the cover (for diagnostics/analysis)."""
        sizes = sorted(
            (tree.node_count for tree in self.trees.values()), reverse=True
        )
        return CoverStatistics(
            tree_count=len(self.trees),
            singleton_count=len(self.isolated_mentions()),
            total_edges=self.total_edges,
            max_tree_weight=self.cost(),
            largest_tree_nodes=sizes[0] if sizes else 0,
            bound=self.bound,
            subtree_count=self.subtree_count,
        )


@dataclass(frozen=True)
class CoverStatistics:
    """Structural summary of an M-rooted tree cover."""

    tree_count: int
    singleton_count: int
    total_edges: int
    max_tree_weight: float
    largest_tree_nodes: int
    bound: float
    subtree_count: int

    @property
    def isolation_rate(self) -> float:
        """Fraction of mentions standing alone — the sparse-coherence
        signature the paper's relaxation is designed for."""
        return (
            self.singleton_count / self.tree_count if self.tree_count else 0.0
        )


def derive_tree_cover(
    coherence: CoherenceGraph,
    bound: Optional[float] = None,
    deadline: Optional[Deadline] = None,
) -> TreeCoverResult:
    """Run Algorithm 1 on *coherence* with bound B.

    ``bound=None`` applies the paper's default B = |M|.  With a
    *deadline*, the Kruskal edge loop and the per-mention shortest-path
    sweep of step (f) — the two loops that dominate the solve — check
    the token cooperatively and raise
    :class:`~repro.core.deadline.DeadlineExceeded` on expiry.
    """
    if bound is None:
        bound = float(max(len(coherence.mentions), 1))
    if bound <= 0:
        raise ValueError(f"bound must be positive, got {bound}")
    check = None if deadline is None else (lambda: deadline.check("tree_cover"))

    # Step (a): edge pruning.
    pruned = coherence.graph.pruned(bound)

    # Step (b): contract mentions into the major root.
    contracted, owner = _contract(coherence, pruned, bound)

    # Step (c): MST.  The contracted graph may legitimately be missing
    # candidate nodes whose every edge was pruned — that is a failure
    # (the node could never be covered within B), matching the paper's
    # "B is too small" warning for disconnected graphs.
    mst = minimum_spanning_forest(contracted, check=check)
    if contracted.node_count > 0 and mst.edge_count != contracted.node_count - 1:
        raise BoundTooSmallError(
            f"contracted coherence graph is disconnected at B={bound}"
        )

    # Step (d): decompose the major root back into mentions.
    raw_trees = _decompose(coherence, mst, owner)

    # Step (e): tree splitting.
    trees: Dict[Span, RootedTree] = {}
    leftover_subtrees: List[RootedTree] = []
    for mention, tree in raw_trees.items():
        leftover, subtrees = split_tree(tree, bound)
        trees[mention] = leftover
        leftover_subtrees.extend(subtrees)

    if not leftover_subtrees:
        return TreeCoverResult(trees, bound, 0)

    # Step (f): maximum matching of subtrees to mentions.
    _attach_subtrees(coherence, pruned, trees, leftover_subtrees, bound, check)
    return TreeCoverResult(trees, bound, len(leftover_subtrees))


# ---------------------------------------------------------------------------
# steps
# ---------------------------------------------------------------------------

def _contract(
    coherence: CoherenceGraph, pruned: WeightedGraph, bound: float
) -> Tuple[WeightedGraph, Dict[CandidateNode, Span]]:
    """Build the contracted graph G' = ({r} u C, ...).

    Each candidate node connects to the root with the weight of its own
    mention edge (if that edge survived pruning); concept-concept edges
    are carried over unchanged.  ``owner`` records which mention each
    root edge decomposes back to.
    """
    contracted = WeightedGraph()
    contracted.add_node(MAJOR_ROOT)
    owner: Dict[CandidateNode, Span] = {}
    for mention, nodes in coherence.candidates_by_mention.items():
        for node in nodes:
            contracted.add_node(node)
            weight = pruned.get_weight(mention, node)
            if weight is not None:
                contracted.add_edge(MAJOR_ROOT, node, weight)
                owner[node] = mention
    for u, v, w in pruned.edges():
        if isinstance(u, CandidateNode) and isinstance(v, CandidateNode):
            contracted.add_edge(u, v, w)
    return contracted, owner


def _decompose(
    coherence: CoherenceGraph,
    mst: WeightedGraph,
    owner: Dict[CandidateNode, Span],
) -> Dict[Span, RootedTree]:
    """Step (d): replace the major root by the mention nodes.

    Every component of MST - r hangs off r through exactly one edge
    (otherwise the MST would contain a cycle), so each component belongs
    to the mention owning that edge.  Mentions with several root edges
    adopt several components; mentions with none keep a singleton tree.
    """
    trees: Dict[Span, RootedTree] = {
        mention: RootedTree(mention) for mention in coherence.mentions
    }
    if MAJOR_ROOT not in mst:
        return trees
    root_edges = list(mst.neighbours(MAJOR_ROOT).items())
    without_root = mst.copy()
    without_root.remove_node(MAJOR_ROOT)
    for anchor, weight in root_edges:
        mention = owner[anchor]
        tree = trees[mention]
        tree.add_edge(mention, anchor, weight)
        _graft_component(tree, without_root, anchor)
    return trees


def _graft_component(
    tree: RootedTree, forest: WeightedGraph, anchor: CandidateNode
) -> None:
    """Copy the forest component reachable from *anchor* into *tree*."""
    stack = [anchor]
    visited = {anchor}
    while stack:
        node = stack.pop()
        for neighbour, weight in sorted(
            forest.neighbours(node).items(), key=lambda kv: repr(kv[0])
        ):
            if neighbour in visited or neighbour in tree:
                continue
            visited.add(neighbour)
            tree.add_edge(node, neighbour, weight)
            stack.append(neighbour)


def _attach_subtrees(
    coherence: CoherenceGraph,
    pruned: WeightedGraph,
    trees: Dict[Span, RootedTree],
    subtrees: List[RootedTree],
    bound: float,
    check: Optional[Callable[[], None]] = None,
) -> None:
    """Step (f): match subtrees to mentions and graft them via shortest paths."""
    eligibility: Dict[int, List[Span]] = {idx: [] for idx in range(len(subtrees))}
    paths: Dict[Tuple[int, Span], List] = {}
    subtree_node_sets = [subtree.node_set() for subtree in subtrees]
    for mention in coherence.mentions:
        if check is not None:
            check()
        if mention not in pruned:
            continue
        distances, predecessors = dijkstra(pruned, mention, max_distance=bound)
        for idx, subtree_nodes in enumerate(subtree_node_sets):
            best_node = None
            best_dist = None
            for node in subtree_nodes:
                dist = distances.get(node)
                if dist is None or dist <= 0.0:
                    continue
                if best_dist is None or dist < best_dist:
                    best_dist = dist
                    best_node = node
            if best_node is None:
                continue
            eligibility[idx].append(mention)
            path = [best_node]
            while path[-1] != mention:
                path.append(predecessors[path[-1]])
            path.reverse()
            paths[(idx, mention)] = path

    matching = hopcroft_karp(list(eligibility), eligibility)
    if len(matching) < len(subtrees):
        raise BoundTooSmallError(
            f"{len(subtrees) - len(matching)} subtrees cannot be matched to "
            f"any mention within B={bound}"
        )
    for idx, mention in matching.items():
        _merge_into_tree(trees[mention], subtrees[idx], paths[(idx, mention)], pruned)


def _merge_into_tree(
    tree: RootedTree,
    subtree: RootedTree,
    path: List,
    pruned: WeightedGraph,
) -> None:
    """Graft *subtree* onto *tree* through the connecting *path*.

    The merged structure may momentarily contain nodes already present in
    the leftover tree (trees can share nodes); the rebuild keeps the
    result a tree by taking the union graph's spanning structure rooted
    at the mention.
    """
    union = tree.to_graph()
    for i in range(len(path) - 1):
        u, v = path[i], path[i + 1]
        if not union.has_edge(u, v):
            union.add_node(u)
            union.add_node(v)
            union.add_edge(u, v, pruned.weight(u, v))
    for edge in subtree.edges():
        if not union.has_edge(edge.parent, edge.child):
            union.add_node(edge.parent)
            union.add_node(edge.child)
            union.add_edge(edge.parent, edge.child, edge.weight)
    rebuilt = RootedTree.from_graph(union, tree.root)
    tree.adopt(rebuilt)


# ---------------------------------------------------------------------------
# bound search
# ---------------------------------------------------------------------------

def minimal_feasible_bound(
    coherence: CoherenceGraph,
    tolerance: float = 1e-3,
    max_bound: Optional[float] = None,
) -> float:
    """Binary-search the smallest B for which Algorithm 1 succeeds.

    The approximation guarantee then gives a cover of cost at most 4B*
    with B* <= the optimum cover cost.  Used by the ablation benchmarks;
    the production linker keeps the paper's B = |M|.
    """
    if max_bound is None:
        max_bound = max(float(len(coherence.mentions)), 1.0)
    lo, hi = 0.0, max_bound
    if not _feasible(coherence, hi):
        raise BoundTooSmallError(
            f"no feasible bound up to max_bound={max_bound}"
        )
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if mid <= 0.0:
            break
        if _feasible(coherence, mid):
            hi = mid
        else:
            lo = mid
    return hi


def _feasible(coherence: CoherenceGraph, bound: float) -> bool:
    try:
        derive_tree_cover(coherence, bound)
        return True
    except BoundTooSmallError:
        return False
