"""Mention groups and canopies (Sec. 5.1, Algorithm 4).

Overlapping mentions ("Fellow", "AAAS", "Fellow of the AAAS") must not all
enter the final linking; the paper organises them as follows:

* **short-text mentions** (Definition 7) contain no linguistic feature;
  here they are the maximal feature-free noun spans;
* a **mention group** (Definition 8) is a maximal chain of short-text
  mentions connected by linguistic features (Algorithm 4's queue scan);
* the **canopies** of a group (Definition 9) are the alternative ways of
  merging the chain into long-text mentions: every contiguous partition
  of the chain whose multi-mention segments correspond to actually
  extracted long spans yields one canopy.

Relational phrases and noun spans not reachable through the partition
semantics get singleton groups; exclusivity between overlapping mentions
of *different* groups is enforced by the disambiguation algorithm's
overlap pruning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Set, Tuple

from repro.nlp.features import classify_gap, contains_feature
from repro.nlp.spans import Span, Token, spans_overlap

_MAX_CHAIN_FOR_FULL_ENUMERATION = 6
_MAX_CANOPIES = 24


@dataclass(frozen=True)
class Canopy:
    """One alternative set of final mentions for a group.

    ``all_members_linkable`` records whether every member has KB
    candidates (filled in when the group builder is given a candidate
    oracle); the disambiguation algorithm prefers committing the most
    merged *achievable* reading, so a split reading completing first is
    deferred while a fuller linkable reading is still in play.
    """

    members: Tuple[Span, ...]
    all_members_linkable: bool = field(default=True, compare=False)

    def __contains__(self, span: Span) -> bool:
        return span in self.members

    def __len__(self) -> int:
        return len(self.members)


@dataclass
class MentionGroup:
    """A group of correlated short-text mentions with its canopies."""

    group_id: int
    short_mentions: Tuple[Span, ...]
    canopies: Tuple[Canopy, ...]

    def spans(self) -> Set[Span]:
        """Every span appearing in any canopy of the group."""
        result: Set[Span] = set()
        for canopy in self.canopies:
            result |= set(canopy.members)
        return result

    @property
    def is_singleton(self) -> bool:
        return len(self.short_mentions) == 1 and len(self.canopies) == 1


def build_mention_groups(
    tokens: List[Token],
    noun_spans: List[Span],
    relation_spans: List[Span],
    has_candidates=None,
) -> List[MentionGroup]:
    """Algorithm 4: partition mentions into groups and generate canopies.

    ``has_candidates`` (optional ``Span -> bool``) enables *fallback
    canopies*: when a canopy member has no KB candidates (e.g. the OOV
    span "Mr Miller"), a variant canopy substitutes its widest contained
    span that does have candidates ("Miller"), so the group can still
    commit a reading.
    """
    inventory = sorted(noun_spans, key=lambda s: (s.token_start, s.token_end))
    short_mentions = _select_short_text_mentions(tokens, inventory)
    chains = _chain_short_mentions(tokens, short_mentions)

    groups: List[MentionGroup] = []
    assigned: Set[Span] = set()
    for chain in chains:
        canopies = _generate_canopies(chain, inventory)
        if has_candidates is not None:
            canopies = _add_fallback_canopies(canopies, inventory, has_candidates)
            canopies = tuple(
                Canopy(
                    c.members,
                    all(has_candidates(m) for m in c.members),
                )
                for c in canopies
            )
        group = MentionGroup(len(groups), tuple(chain), canopies)
        groups.append(group)
        assigned |= group.spans()

    # Noun spans not reachable through the canopy semantics: spans that
    # merely repeat part of an already-grouped reading (contained in or
    # overlapping an assigned span) are redundant alternatives and stay
    # groupless — the disambiguation algorithm treats groupless mentions
    # as dead.  Genuinely disjoint leftovers get singleton groups.
    for span in inventory:
        if span in assigned:
            continue
        if any(spans_overlap(span, other) for other in assigned):
            continue
        groups.append(MentionGroup(len(groups), (span,), (Canopy((span,)),)))
        assigned.add(span)

    for span in relation_spans:
        groups.append(MentionGroup(len(groups), (span,), (Canopy((span,)),)))
    return groups


def _add_fallback_canopies(
    canopies: Tuple[Canopy, ...],
    inventory: List[Span],
    has_candidates,
) -> Tuple[Canopy, ...]:
    """Variant canopies substituting candidate-less members (see above)."""
    result: List[Canopy] = list(canopies)
    seen: Set[Tuple[Span, ...]] = {c.members for c in canopies}
    for canopy in canopies:
        replaced: List[Span] = []
        changed = False
        for member in canopy.members:
            if has_candidates(member):
                replaced.append(member)
                continue
            inner = [
                s
                for s in inventory
                if member.covers(s)
                and not s.same_range(member)
                and has_candidates(s)
            ]
            if inner:
                # Widest first; on ties prefer the rightmost span — the
                # syntactic head of an English noun phrase ("Ms Weber"
                # falls back to "Weber", not "Ms").
                inner.sort(key=lambda s: (-s.length, -s.token_start))
                replaced.append(inner[0])
                changed = True
            else:
                replaced.append(member)
        if changed:
            key = tuple(replaced)
            if key not in seen:
                seen.add(key)
                result.append(Canopy(key))
    return tuple(result)


# ---------------------------------------------------------------------------
# short-text mention selection
# ---------------------------------------------------------------------------

def _select_short_text_mentions(
    tokens: List[Token], inventory: List[Span]
) -> List[Span]:
    """Maximal feature-free noun spans, in document order."""
    feature_free = [s for s in inventory if not contains_feature(tokens, s)]
    maximal: List[Span] = []
    for span in feature_free:
        if any(other is not span and other.covers(span) for other in feature_free):
            continue
        maximal.append(span)
    maximal.sort(key=lambda s: s.token_start)
    return maximal


def _chain_short_mentions(
    tokens: List[Token], short_mentions: List[Span]
) -> List[List[Span]]:
    """Group consecutive short mentions connected by a feature (same sentence)."""
    chains: List[List[Span]] = []
    current: List[Span] = []
    for mention in short_mentions:
        if not current:
            current = [mention]
            continue
        previous = current[-1]
        connected = (
            previous.sentence_index == mention.sentence_index
            and classify_gap(tokens, previous.token_end, mention.token_start)
            is not None
        )
        if connected:
            current.append(mention)
        else:
            chains.append(current)
            current = [mention]
    if current:
        chains.append(current)
    return chains


# ---------------------------------------------------------------------------
# canopy generation
# ---------------------------------------------------------------------------

def _generate_canopies(
    chain: Sequence[Span], inventory: List[Span]
) -> Tuple[Canopy, ...]:
    """All contiguous-partition canopies of *chain*.

    A multi-mention segment chain[i..j] participates only when the
    document actually contains a long span covering it; minor slack at
    the left edge (a leading determiner present or absent) is allowed so
    "The Storm" + "Sea" can merge into "Storm on the Sea".
    """
    if len(chain) == 1:
        return (Canopy((chain[0],)),)
    if len(chain) > _MAX_CHAIN_FOR_FULL_ENUMERATION:
        canopies = [Canopy(tuple(chain))]
        full = _segment_spans(chain, 0, len(chain) - 1, inventory)
        for span in full[:1]:
            canopies.append(Canopy((span,)))
        return tuple(canopies)

    partitions = _partitions(chain, inventory)
    canopies: List[Canopy] = []
    seen: Set[Tuple[Span, ...]] = set()
    for members in partitions:
        key = tuple(members)
        if key not in seen:
            seen.add(key)
            canopies.append(Canopy(key))
        if len(canopies) >= _MAX_CANOPIES:
            break
    return tuple(canopies)


def _partitions(
    chain: Sequence[Span], inventory: List[Span]
) -> List[List[Span]]:
    """Enumerate contiguous partitions (each as the resulting member list)."""
    n = len(chain)
    results: List[List[Span]] = []

    def recurse(start: int, acc: List[Span]) -> None:
        if start == n:
            results.append(list(acc))
            return
        for end in range(start, n):
            if end == start:
                acc.append(chain[start])
                recurse(start + 1, acc)
                acc.pop()
            else:
                for merged in _segment_spans(chain, start, end, inventory):
                    acc.append(merged)
                    recurse(end + 1, acc)
                    acc.pop()

    recurse(0, [])
    # All-singles partition first (it is always generated first by the
    # recursion order), then increasingly merged ones.
    return results


def _segment_spans(
    chain: Sequence[Span], start: int, end: int, inventory: List[Span]
) -> List[Span]:
    """Inventory spans realising the merge of chain[start..end]."""
    left = chain[start]
    right = chain[end]
    allowed_starts = {left.token_start, left.token_start + 1, left.token_start - 1}
    matches = [
        span
        for span in inventory
        if span.token_end == right.token_end
        and span.token_start in allowed_starts
        and span.token_start < right.token_start
    ]
    # Prefer the widest realisation (closest to the chain's full extent).
    matches.sort(key=lambda s: (-s.length, s.token_start))
    return matches[:2]
