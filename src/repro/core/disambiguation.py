"""Greedy knowledge disambiguation (Sec. 5.2, Algorithm 5).

Edges of the coherence tree cover are processed in non-decreasing weight
order (the Kruskal discipline — confident decisions first) and turned
into (mention, candidate) proposals:

* a mention->candidate edge proposes that candidate for that mention;
* a candidate<->candidate edge proposes both candidates for their
  respective mentions when neither mention is linked yet, and propagates
  a proposal to the unlinked side when the other side's concept is
  already part of the result.

Proposals accumulate per (group, canopy); a canopy whose every member has
a proposal *commits*: the proposals become final links, the group closes,
all sibling canopies die.  The paper's four pruning strategies are
enforced throughout:

1. one concept per mention (a linked mention accepts no further
   proposals);
2. edges touching a candidate whose mention is already linked to a
   *different* concept are discarded;
3. once a group committed one canopy, mentions of its other canopies are
   *dead*: proposals for them are dropped and — going slightly beyond the
   pseudo-code but following the strategy's prose ("we will not consider
   any other mention in other canopies") — coherence edges incident to a
   dead mention's candidates are discarded entirely, so a doomed
   alternative reading cannot vote for its neighbours;
4. the scan stops as soon as every group is closed.

One addition beyond the paper's pseudo-code: a proposal is rejected when
its mention overlaps an already-committed mention of a different group —
this resolves noun/relation span conflicts (e.g. "sister city" inside
"is the sister city of") in the same greedy spirit.

Two entry points share the scan.  :func:`disambiguate` runs it over the
tree-cover edges (the paper's exact mode); :func:`disambiguate_pairwise`
runs the *same* scan directly over every coherence-graph edge — the
pairwise greedy collective disambiguation of Pair-Linking, used by the
linker's fast mode on low-ambiguity documents where deriving a cover
first would not change the confident early decisions anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.core.canopies import MentionGroup
from repro.core.coherence import CandidateNode, CoherenceGraph
from repro.core.deadline import Deadline
from repro.core.tree_cover import TreeCoverResult
from repro.graph.weighted_graph import WeightedGraph
from repro.nlp.spans import Span

_Node = Union[Span, CandidateNode]

# Edges of the greedy scan processed between cooperative-cancellation
# checks (same discipline as the Kruskal loop of the tree-cover solve).
CHECK_EVERY = 64


@dataclass(frozen=True)
class LinkExplanation:
    """Why a mention was linked: the committing evidence.

    ``from_coherence`` distinguishes coherence-driven decisions from
    prior fallbacks; for coherence decisions ``partner_concept`` is the
    concept on the other side of the committing edge — the anchor that
    pulled this link in.
    """

    edge_weight: float
    from_coherence: bool
    partner_concept: Optional[str] = None

    def describe(self) -> str:
        if self.from_coherence:
            partner = self.partner_concept or "?"
            return (
                f"coherence edge (d={self.edge_weight:.3f}) "
                f"with {partner}"
            )
        return f"prior edge (d={self.edge_weight:.3f})"


@dataclass
class DisambiguationResult:
    """Final mention -> candidate mapping plus the rejected mentions."""

    gamma: Dict[Span, CandidateNode]
    non_linkable: List[Span]
    committed_canopies: Dict[int, int]  # group_id -> canopy index
    edges_processed: int = 0
    demoted: int = 0  # links dropped by the weak-prior filter
    provenance: Dict[Span, LinkExplanation] = field(default_factory=dict)

    def linked_mentions(self) -> List[Span]:
        return list(self.gamma)

    def concept_for(self, mention: Span) -> Optional[str]:
        node = self.gamma.get(mention)
        return node.concept_id if node is not None else None

    def explanation_for(self, mention: Span) -> Optional[LinkExplanation]:
        return self.provenance.get(mention)


@dataclass
class _Proposal:
    mention: Span
    candidate: CandidateNode
    weight: float
    from_coherence: bool
    partner_concept: Optional[str] = None


def disambiguate(
    cover: TreeCoverResult,
    groups: List[MentionGroup],
    prior_link_threshold: float = 1.0,
    extra_edges: Optional[List[Tuple[_Node, _Node, float]]] = None,
    deadline: Optional[Deadline] = None,
) -> DisambiguationResult:
    """Run Algorithm 5 over the tree cover and the mention groups.

    ``extra_edges`` are additional mention->candidate edges merged into
    the scan.  The tree cover's trees share nodes and edges (Definition
    6): each mention's tree is rooted through its *own* local edges, so
    the union of cover edges includes every surviving prior edge even
    when the contracted MST routed the component through a different
    mention.  The caller supplies them here because
    :class:`~repro.core.tree_cover.TreeCoverResult` materialises one
    representative tree per component.

    With a *deadline*, the greedy edge scan checks the token every
    :data:`CHECK_EVERY` edges and raises
    :class:`~repro.core.deadline.DeadlineExceeded` on expiry — the
    anytime framing of Pair-Linking: cutting collective disambiguation
    short at a budget still leaves the prior-only answer usable.
    """
    edges = _sorted_cover_edges(cover, extra_edges or [])
    return _greedy_scan(
        edges, cover.trees, groups, prior_link_threshold, deadline
    )


def disambiguate_pairwise(
    coherence: CoherenceGraph,
    groups: List[MentionGroup],
    prior_link_threshold: float = 1.0,
    deadline: Optional[Deadline] = None,
) -> DisambiguationResult:
    """Pair-Linking fast path: the greedy scan over the raw coherence graph.

    Skips tree-cover derivation entirely: every coherence-graph edge —
    local prior edges and concept-concept edges alike — feeds the scan
    in the same non-decreasing-weight order the cover path uses.  This
    is pairwise greedy collective disambiguation as in Pair-Linking
    (Phan et al., PAPERS.md): the confident early decisions are made
    from the lightest pairwise evidence directly, without paying for
    prune/contract/Kruskal/decompose/split/matching first.  On
    low-ambiguity documents those early edges are exactly the ones the
    cover would have kept, so the answers coincide; the ambiguity
    router in the linker decides when that bet is safe.
    """
    edges = _sorted_graph_edges(coherence.graph)
    return _greedy_scan(
        edges, coherence.mentions, groups, prior_link_threshold, deadline
    )


def _greedy_scan(
    edges: List[Tuple[_Node, _Node, float]],
    mentions,
    groups: List[MentionGroup],
    prior_link_threshold: float,
    deadline: Optional[Deadline],
) -> DisambiguationResult:
    """The shared Algorithm 5 edge scan over a prepared edge list."""
    state = _ScanState(mentions, groups)
    processed = 0

    for u, v, weight in edges:
        if deadline is not None and processed % CHECK_EVERY == 0:
            deadline.check("disambiguation")
        processed += 1
        if _touches_dead_mention(u, v, state.dead_mentions):
            continue  # pruning strategy 3 extended to candidate nodes
        proposals = _proposals_for_edge(
            u, v, weight, state.gamma, state.selected_concepts
        )
        for proposal in proposals:
            state.apply(proposal)
        if not state.active:
            break  # pruning strategy 4: early stop

    # Deferred split readings: commit them now for groups whose fuller
    # merged reading never completed.
    state.commit_deferred()

    non_linkable = _collect_non_linkable(groups, state)
    final_gamma, demoted = _apply_prior_threshold(
        state.gamma, prior_link_threshold
    )
    provenance = {
        mention: LinkExplanation(
            edge_weight=proposal.weight,
            from_coherence=proposal.from_coherence,
            partner_concept=proposal.partner_concept,
        )
        for mention, proposal in state.gamma.items()
        if mention in final_gamma
    }
    return DisambiguationResult(
        final_gamma,
        non_linkable,
        state.committed_canopies,
        processed,
        demoted,
        provenance,
    )


class _ScanState:
    """Mutable state of one greedy scan, shared by both entry points.

    Committed spans are indexed by token position (``claimed_tokens``)
    and all candidate spans by the tokens they cover
    (``spans_by_token``), so the two overlap sweeps of the scan — the
    per-proposal cross-group check and the post-commit kill of
    contradicting readings — cost O(span length) instead of a linear
    scan over every committed/candidate span per edge.
    """

    def __init__(self, mentions, groups: List[MentionGroup]) -> None:
        self.span_to_group: Dict[Span, MentionGroup] = {}
        for group in groups:
            for span in group.spans():
                self.span_to_group.setdefault(span, group)
        self.group_by_id = {g.group_id: g for g in groups}
        self.spans_by_token: Dict[int, List[Span]] = {}
        for span in self.span_to_group:
            for token in range(span.token_start, span.token_end):
                self.spans_by_token.setdefault(token, []).append(span)
        # token -> group ids whose committed mentions cover it
        self.claimed_tokens: Dict[int, Set[int]] = {}
        self.gamma: Dict[Span, _Proposal] = {}
        self.selected_concepts: Set[str] = set()
        self.committed_spans: Dict[Span, int] = {}  # span -> group_id
        # Mentions outside every group are redundant alternative readings
        # (e.g. "Wilson" inside "Nina Wilson"); they are dead on arrival
        # so their candidates cannot vote through coherence edges.
        self.dead_mentions: Set[Span] = {
            mention for mention in mentions if mention not in self.span_to_group
        }
        self.pending: Dict[Tuple[int, int], Dict[Span, _Proposal]] = {}
        self.active: Set[int] = {g.group_id for g in groups}
        self.committed_canopies: Dict[int, int] = {}
        self.deferred: Dict[int, Tuple[int, Dict[Span, _Proposal]]] = {}

    # ------------------------------------------------------------------
    # overlap queries (token-interval indexed)
    # ------------------------------------------------------------------
    def claimed_by_other(self, mention: Span, group_id: int) -> bool:
        """Whether a committed mention of *another* group overlaps."""
        claimed = self.claimed_tokens
        for token in range(mention.token_start, mention.token_end):
            owners = claimed.get(token)
            if owners and (len(owners) > 1 or group_id not in owners):
                return True
        return False

    def claimed_at_all(self, span: Span) -> bool:
        """Whether any committed mention overlaps *span*."""
        claimed = self.claimed_tokens
        return any(
            token in claimed
            for token in range(span.token_start, span.token_end)
        )

    # ------------------------------------------------------------------
    # proposal application
    # ------------------------------------------------------------------
    def apply(self, proposal: _Proposal) -> None:
        mention = proposal.mention
        if mention in self.dead_mentions:
            return
        group = self.span_to_group.get(mention)
        if group is None or group.group_id not in self.active:
            return
        # Cross-group overlap pruning: a committed mention of another
        # group claims its tokens.
        if self.claimed_by_other(mention, group.group_id):
            self.dead_mentions.add(mention)
            return
        for canopy_index, canopy in enumerate(group.canopies):
            if mention not in canopy:
                continue
            slot = self.pending.setdefault((group.group_id, canopy_index), {})
            if mention not in slot:
                slot[mention] = proposal
            if len(slot) == len(canopy):
                if _should_defer(group, canopy_index):
                    # A fuller (more merged) linkable reading is still in
                    # play: remember this completion but let the merged
                    # canopy race on (it wins immediately if it
                    # completes).  Among several deferrable completions,
                    # keep the most merged (fewest members) — that is the
                    # reading _should_defer was holding out for, and the
                    # first completion to arrive is not necessarily it.
                    current = self.deferred.get(group.group_id)
                    if current is None or len(slot) < len(current[1]):
                        self.deferred[group.group_id] = (
                            canopy_index,
                            dict(slot),
                        )
                    continue
                self.commit(group, canopy_index, slot)
                return

    def commit(
        self,
        group: MentionGroup,
        canopy_index: int,
        slot: Dict[Span, _Proposal],
    ) -> None:
        newly_committed: List[Span] = []
        for mention, proposal in slot.items():
            if mention not in self.gamma:
                self.gamma[mention] = proposal
                self.selected_concepts.add(proposal.candidate.concept_id)
                self.committed_spans[mention] = group.group_id
                for token in range(mention.token_start, mention.token_end):
                    self.claimed_tokens.setdefault(token, set()).add(
                        group.group_id
                    )
                newly_committed.append(mention)
        self.active.discard(group.group_id)
        self.committed_canopies[group.group_id] = canopy_index
        # The group's unselected mentions die (strategy 3), and so does
        # every span of any other group that overlaps a just-committed
        # mention — it can never be selected without contradicting the
        # committed reading.  The token index finds the overlapping spans
        # directly instead of scanning every candidate span.
        for span in group.spans():
            if span not in self.gamma:
                self.dead_mentions.add(span)
        for committed in newly_committed:
            for token in range(committed.token_start, committed.token_end):
                for span in self.spans_by_token.get(token, ()):
                    if span in self.gamma or span in self.dead_mentions:
                        continue
                    self.dead_mentions.add(span)

    def commit_deferred(self) -> None:
        for group_id, (canopy_index, slot) in self.deferred.items():
            if group_id not in self.active:
                continue
            safe_slot = {
                mention: proposal
                for mention, proposal in slot.items()
                if not self.claimed_by_other(mention, group_id)
            }
            if not safe_slot:
                continue
            self.commit(self.group_by_id[group_id], canopy_index, safe_slot)


# ---------------------------------------------------------------------------
# edge handling
# ---------------------------------------------------------------------------

def _mention_length(edge: Tuple[_Node, _Node, float]) -> int:
    # Tie-break equal-weight edges toward longer (more informative)
    # mentions, per the paper's preference for merged long-text
    # readings over their fragments.
    u, v, _ = edge
    if isinstance(u, Span) and isinstance(v, CandidateNode):
        return -u.length
    if isinstance(v, Span) and isinstance(u, CandidateNode):
        return -v.length
    return 0


def _sorted_cover_edges(
    cover: TreeCoverResult,
    extra_edges: List[Tuple[_Node, _Node, float]],
) -> List[Tuple[_Node, _Node, float]]:
    """Deduplicated edges of all trees (+ extras), non-decreasing weight.

    Same-endpoint duplicates keep the *minimum* weight: a tree edge and
    a shared-pool extra edge can legitimately carry different weights
    for the same pair (the shared pool re-derives per-mention nearest
    edges), and the scan must see the most confident version — not
    whichever happened to be pushed first.
    """
    reprs: Dict[_Node, str] = {}

    def repr_of(node: _Node) -> str:
        cached = reprs.get(node)
        if cached is None:
            cached = reprs[node] = repr(node)
        return cached

    index: Dict[Tuple[str, str], int] = {}
    edges: List[Tuple[_Node, _Node, float]] = []

    def push(u: _Node, v: _Node, weight: float) -> None:
        ru, rv = repr_of(u), repr_of(v)
        key = (ru, rv) if ru <= rv else (rv, ru)
        at = index.get(key)
        if at is None:
            index[key] = len(edges)
            edges.append((u, v, weight))
        elif weight < edges[at][2]:
            edges[at] = (u, v, weight)

    for tree in cover.trees.values():
        for edge in tree.edges():
            push(edge.parent, edge.child, edge.weight)
    for u, v, weight in extra_edges:
        push(u, v, weight)

    edges.sort(
        key=lambda e: (e[2], _mention_length(e), repr_of(e[0]), repr_of(e[1]))
    )
    return edges


def _sorted_graph_edges(
    graph: WeightedGraph,
) -> List[Tuple[_Node, _Node, float]]:
    """Every graph edge in the scan order of the cover path.

    The coherence graph stores each unordered pair once, so no
    deduplication is needed — only the shared non-decreasing-weight
    ordering with the long-mention tie-break.
    """
    reprs: Dict[_Node, str] = {}

    def repr_of(node: _Node) -> str:
        cached = reprs.get(node)
        if cached is None:
            cached = reprs[node] = repr(node)
        return cached

    edges = graph.edges()
    edges.sort(
        key=lambda e: (e[2], _mention_length(e), repr_of(e[0]), repr_of(e[1]))
    )
    return edges


def _touches_dead_mention(u: _Node, v: _Node, dead: Set[Span]) -> bool:
    for node in (u, v):
        if isinstance(node, CandidateNode) and node.mention in dead:
            return True
        if isinstance(node, Span) and node in dead:
            return True
    return False


def _proposals_for_edge(
    u: _Node,
    v: _Node,
    weight: float,
    gamma: Dict[Span, "_Proposal"],
    selected_concepts: Set[str],
) -> List[_Proposal]:
    if isinstance(u, Span) and isinstance(v, CandidateNode):
        mention, candidate = u, v
        if mention in gamma:
            return []
        return [_Proposal(mention, candidate, weight, from_coherence=False)]
    if isinstance(v, Span) and isinstance(u, CandidateNode):
        mention, candidate = v, u
        if mention in gamma:
            return []
        return [_Proposal(mention, candidate, weight, from_coherence=False)]
    if isinstance(u, CandidateNode) and isinstance(v, CandidateNode):
        proposals: List[_Proposal] = []
        u_linked = u.mention in gamma
        v_linked = v.mention in gamma
        # Entity<->predicate edges carry asymmetric evidence: a predicate
        # is close to *every* participant of its relation type, so such
        # an edge discriminates between predicate senses but says nothing
        # about which entity sense is right.  Only the predicate side may
        # be proposed from a mixed edge.
        u_votable = not (u.kind == "entity" and v.kind == "predicate")
        v_votable = not (v.kind == "entity" and u.kind == "predicate")
        if not u_linked and not v_linked:
            if u_votable:
                proposals.append(
                    _Proposal(
                        u.mention, u, weight, True, partner_concept=v.concept_id
                    )
                )
            if v_votable:
                proposals.append(
                    _Proposal(
                        v.mention, v, weight, True, partner_concept=u.concept_id
                    )
                )
        elif u.concept_id in selected_concepts and not v_linked:
            if v_votable:
                proposals.append(
                    _Proposal(
                        v.mention, v, weight, True, partner_concept=u.concept_id
                    )
                )
        elif v.concept_id in selected_concepts and not u_linked:
            if u_votable:
                proposals.append(
                    _Proposal(
                        u.mention, u, weight, True, partner_concept=v.concept_id
                    )
                )
        return proposals
    # Span-Span edges never exist in the coherence graph; tolerate and skip.
    return []


def _should_defer(group: MentionGroup, canopy_index: int) -> bool:
    """Whether a completed canopy should wait for a more merged sibling."""
    size = len(group.canopies[canopy_index])
    return any(
        index != canopy_index
        and len(canopy) < size
        and canopy.all_members_linkable
        for index, canopy in enumerate(group.canopies)
    )


# ---------------------------------------------------------------------------
# output assembly
# ---------------------------------------------------------------------------

def _collect_non_linkable(
    groups: List[MentionGroup],
    state: _ScanState,
) -> List[Span]:
    """Uncommitted groups become non-linkable (new concept) reports.

    For each group that never committed a canopy, report its widest
    representative mention, unless every token of it is claimed by a
    committed mention of another group (then it lost an overlap fight and
    is noise, not a new concept).
    """
    non_linkable: List[Span] = []
    for group in groups:
        if group.group_id not in state.active:
            continue
        representative = _representative_span(group)
        if representative is None:
            continue
        if state.claimed_at_all(representative):
            continue
        non_linkable.append(representative)
    return non_linkable


def _representative_span(group: MentionGroup) -> Optional[Span]:
    best: Optional[Span] = None
    for canopy in group.canopies:
        for span in canopy.members:
            if best is None or span.length > best.length:
                best = span
    return best


def _apply_prior_threshold(
    gamma: Dict[Span, _Proposal],
    threshold: float,
) -> Tuple[Dict[Span, CandidateNode], int]:
    """Drop links committed by a weak prior alone.

    A mention committed through its own mention->candidate edge (no
    coherence evidence) with local distance above *threshold* is too
    uncertain to report: the candidate was far-fetched and nothing in the
    document supported it.  Dropping these is TENET's precision-leaning
    behaviour on ambiguous isolated phrases; genuinely new concepts (no
    candidates at all) are reported separately via uncommitted groups.
    """
    kept: Dict[Span, CandidateNode] = {}
    demoted = 0
    for mention, proposal in gamma.items():
        if not proposal.from_coherence and proposal.weight > threshold:
            demoted += 1
            continue
        kept[mention] = proposal.candidate
    return kept, demoted
