"""TENET core: the paper's primary contribution.

* :mod:`repro.core.coherence` — the knowledge coherence graph (Sec. 3);
* :mod:`repro.core.tree_cover` — the minimum-cost M-rooted coherence tree
  cover approximation (Sec. 4, Algorithm 1);
* :mod:`repro.core.splitting` — tree splitting (Algorithms 2-3);
* :mod:`repro.core.canopies` — mention groups and canopies (Sec. 5.1,
  Algorithm 4);
* :mod:`repro.core.disambiguation` — greedy disambiguation with pruning
  (Sec. 5.2, Algorithm 5);
* :mod:`repro.core.linker` — the end-to-end :class:`TenetLinker` facade.
"""

from repro.core.config import TenetConfig
from repro.core.deadline import Deadline, DeadlineExceeded, PartialLinking
from repro.core.result import Link, LinkingResult
from repro.core.candidates import CandidateGenerator, MentionCandidates
from repro.core.coherence import CandidateNode, CoherenceGraph, build_coherence_graph
from repro.core.splitting import split_tree
from repro.core.tree_cover import (
    BoundTooSmallError,
    TreeCoverResult,
    derive_tree_cover,
    minimal_feasible_bound,
)
from repro.core.canopies import Canopy, MentionGroup, build_mention_groups
from repro.core.disambiguation import disambiguate
from repro.core.linker import TenetLinker

__all__ = [
    "TenetConfig",
    "Deadline",
    "DeadlineExceeded",
    "PartialLinking",
    "Link",
    "LinkingResult",
    "CandidateGenerator",
    "MentionCandidates",
    "CandidateNode",
    "CoherenceGraph",
    "build_coherence_graph",
    "split_tree",
    "BoundTooSmallError",
    "TreeCoverResult",
    "derive_tree_cover",
    "minimal_feasible_bound",
    "Canopy",
    "MentionGroup",
    "build_mention_groups",
    "disambiguate",
    "TenetLinker",
]
