"""The knowledge coherence graph (Sec. 3 of the paper).

Nodes are the mentions (noun + relational phrases) and their candidate
concepts; edges carry semantic distances:

* mention -> own candidate: ``d = 1 - P(c | m)`` (Eq. 1-2);
* entity candidate <-> entity candidate of a *different* noun phrase:
  ``1 - cos(embedding)`` (Eq. 3);
* predicate candidate <-> predicate candidate of a different relational
  phrase, only when both phrases are in the *same sentence* (Eq. 4);
* entity candidate <-> predicate candidate, only when the noun phrase and
  the relational phrase are in the same sentence (Eq. 5).

Candidate nodes are keyed per (mention, concept) pair so that the mapping
``M(v)`` used by Algorithm 5 — "the mention whose candidate v is" — is
always well defined, even when two mentions share a candidate concept.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.embeddings.similarity import SimilarityIndex
from repro.graph.weighted_graph import WeightedGraph
from repro.kb.alias_index import CandidateHit
from repro.nlp.spans import Span


@dataclass(frozen=True)
class CandidateNode:
    """A candidate concept attached to one specific mention."""

    mention: Span
    concept_id: str
    kind: str  # "entity" | "predicate"

    def __post_init__(self) -> None:
        # Candidate nodes are graph keys in every adjacency dict; cache
        # the hash like Span does (the mention's own hash is cached, so
        # this tuple hash is cheap and computed exactly once).
        object.__setattr__(
            self, "_hash", hash((self.mention, self.concept_id, self.kind))
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cand({self.mention.text!r}->{self.concept_id})"


@dataclass
class CoherenceGraph:
    """The weighted graph plus the mention/candidate bookkeeping."""

    graph: WeightedGraph
    mentions: List[Span]
    candidates_by_mention: Dict[Span, List[CandidateNode]]
    priors: Dict[CandidateNode, float]

    def mention_of(self, node: CandidateNode) -> Span:
        return node.mention

    def candidate_nodes(self) -> List[CandidateNode]:
        return [
            node
            for nodes in self.candidates_by_mention.values()
            for node in nodes
        ]

    def local_distance(self, node: CandidateNode) -> float:
        """d(m, c) = 1 - P(c | m) for the node's own mention edge."""
        return 1.0 - self.priors[node]

    @property
    def mention_count(self) -> int:
        return len(self.mentions)

    @property
    def concept_node_count(self) -> int:
        return sum(len(v) for v in self.candidates_by_mention.values())


def build_coherence_graph(
    mention_candidates: Dict[Span, List[CandidateHit]],
    similarity: SimilarityIndex,
    max_concept_distance: float = 1.0,
    predicate_similarity_scale: float = 0.75,
    prior_distance_floor: float = 0.62,
    coherence_prior_blend: float = 0.06,
    prior_distance_curve: float = 0.5,
    max_neighbours: Optional[int] = 12,
    similarity_mode: str = "batch",
    precomputed_sims: Optional[np.ndarray] = None,
) -> CoherenceGraph:
    """Construct the knowledge coherence graph.

    Parameters
    ----------
    mention_candidates:
        Mapping mention span -> candidate hits (possibly empty — mentions
        without candidates become isolated mention nodes, the seed of
        "new concept" detection).
    similarity:
        The cached embedding similarity index; ``1 - cos`` values are
        clipped to ``[0, max_concept_distance]`` so unrelated concepts
        (near-orthogonal embeddings) sit at the far end of the same scale
        as local distances.
    predicate_similarity_scale:
        Similarity involving a predicate candidate is multiplied by this
        factor before conversion to distance.  Substrate calibration: the
        propagation embeddings place predicates near *every* entity they
        co-occur with (they are graph hubs), whereas the paper's
        PyTorch-BigGraph vectors keep predicates in their own region;
        shrinking predicate similarity restores the paper's property that
        entity-entity coherence is the sharpest signal.
    prior_distance_floor:
        Scale calibration between the two distance families.  Local
        distances (1 - P) and embedding distances (1 - cos) are not
        commensurable: an anchor-statistics prior of 0.9 and a cosine of
        0.9 express very different amounts of evidence.  Local distances
        are mapped to ``floor + (1 - floor) * (1 - P)`` so that *strong
        in-document coherence* (direct KB neighbours, d ~ 0.5-0.6 under
        the default trainer) sorts before even a dominant prior, while a
        dominant prior still sorts before *weak* coherence (same-domain
        strangers, d ~ 0.9).  This single knob realises the paper's
        min-max intuition: popularity may only be overridden by genuinely
        strong relatedness.
    coherence_prior_blend:
        A small fraction of both endpoints' local distances added to each
        concept-concept edge.  Near-tied coherence edges (two candidates
        equally related to the same anchor, e.g. two people of the same
        surname born in the same city) then resolve toward the candidate
        with the better prior instead of by arbitrary ordering.
    prior_distance_curve:
        Exponent applied to (1 - P) before the floor mapping; values
        below 1 push mid-confidence priors toward the weak end of the
        scale (see inline comment at the construction site).
    similarity_mode:
        ``"batch"`` (default) computes all concept-concept similarities
        as one ``E @ E.T`` matrix product via
        :meth:`SimilarityIndex.batch_similarity`; ``"scalar"`` is the
        per-pair reference path kept for parity tests and the benchmark
        harness's batch-vs-scalar comparison.  Both produce the same
        graph (weights agree to ~1e-15).
    precomputed_sims:
        Optional pre-built similarity matrix over the candidate nodes in
        construction order (one row/column per node, same layout the
        ``"batch"`` mode would compute).  Used by ``repro.session`` to
        reuse similarity blocks across increments; when given it replaces
        the ``similarity_mode`` computation entirely.  Values must match
        what ``batch_similarity`` would return for the same ids — the
        caller owns that contract (sessions only reuse rows computed by
        the same store, so reused entries are bitwise-identical and new
        entries are freshly computed).
    """
    graph = WeightedGraph()
    mentions = list(mention_candidates)
    candidates_by_mention: Dict[Span, List[CandidateNode]] = {}
    priors: Dict[CandidateNode, float] = {}

    for mention, hits in mention_candidates.items():
        graph.add_node(mention)
        nodes: List[CandidateNode] = []
        for hit in hits:
            node = CandidateNode(mention, hit.concept_id, hit.kind)
            nodes.append(node)
            priors[node] = hit.prior
            raw = min(max(1.0 - hit.prior, 0.0), 1.0)
            # The curve exponent (< 1) lifts mid-range priors: a 40%-
            # confident prior is much closer to "uninformative" than to
            # "half as good as certain", so ambiguous surnames must not
            # outrank tail-end genuine coherence.
            local = prior_distance_floor + (1.0 - prior_distance_floor) * (
                raw ** prior_distance_curve
            )
            graph.add_edge(mention, node, local)
        candidates_by_mention[mention] = nodes

    all_nodes = [n for nodes in candidates_by_mention.values() for n in nodes]
    _add_concept_edges(
        graph,
        all_nodes,
        priors,
        similarity,
        max_concept_distance,
        predicate_similarity_scale,
        coherence_prior_blend,
        max_neighbours,
        similarity_mode,
        precomputed_sims=precomputed_sims,
    )
    return CoherenceGraph(graph, mentions, candidates_by_mention, priors)


def _scalar_similarity_matrix(
    similarity: SimilarityIndex, concept_ids: List[str]
) -> np.ndarray:
    """Per-pair reference for :meth:`SimilarityIndex.batch_similarity`.

    The O(n^2) scalar path the batched matrix product replaced — retained
    so parity tests and the benchmark harness can pin the vectorised hot
    path against it.  Matches the batch semantics: same-id pairs are
    exactly 1, pairs with an id missing from the store are 0.
    """
    n = len(concept_ids)
    store = similarity._store
    known = [cid in store for cid in concept_ids]
    sims = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        a = concept_ids[i]
        for j in range(i, n):
            b = concept_ids[j]
            if a == b:
                value = 1.0
            elif known[i] and known[j]:
                value = similarity.similarity(a, b)
            else:
                value = 0.0
            sims[i, j] = sims[j, i] = value
    return sims


def _add_concept_edges(
    graph: WeightedGraph,
    all_nodes: List[CandidateNode],
    priors: Dict[CandidateNode, float],
    similarity: SimilarityIndex,
    max_concept_distance: float,
    predicate_similarity_scale: float,
    coherence_prior_blend: float,
    max_neighbours: Optional[int],
    similarity_mode: str = "batch",
    precomputed_sims: Optional[np.ndarray] = None,
) -> None:
    """Concept-concept edges, vectorised over all candidate pairs.

    The pairwise weight matrix is one batched similarity block from the
    embedding store (the paper's pre-computed relatedness index; Sec. 6.2
    notes that edge retrieval is O(1) because relatedness is
    pre-computed).  When ``max_neighbours`` is set, each candidate only
    materialises its that-many lightest admissible edges — a kNN
    sparsification that keeps the edge count linear in the candidate
    count without touching the light edges any downstream algorithm would
    ever pick.
    """
    n = len(all_nodes)
    if n < 2:
        return
    concept_ids = [node.concept_id for node in all_nodes]
    if precomputed_sims is not None:
        if precomputed_sims.shape != (n, n):
            raise ValueError(
                f"precomputed_sims shape {precomputed_sims.shape} does not "
                f"match {n} candidate nodes"
            )
        sims = precomputed_sims
    elif similarity_mode == "batch":
        sims = similarity.batch_similarity(concept_ids)
    elif similarity_mode == "scalar":
        sims = _scalar_similarity_matrix(similarity, concept_ids)
    else:
        raise ValueError(
            f"similarity_mode must be 'batch' or 'scalar', got {similarity_mode!r}"
        )

    is_predicate = np.array([node.kind == "predicate" for node in all_nodes])
    predicate_pair = is_predicate[:, None] | is_predicate[None, :]
    sims = np.where(predicate_pair, sims * predicate_similarity_scale, sims)

    local = np.array([1.0 - priors[node] for node in all_nodes])
    blend = coherence_prior_blend * (local[:, None] + local[None, :])
    weights = np.clip(1.0 - sims + blend, 1e-9, max_concept_distance)

    mention_index: Dict[Span, int] = {}
    mention_of = np.empty(n, dtype=np.int64)
    starts = np.empty(n, dtype=np.int64)
    ends = np.empty(n, dtype=np.int64)
    sentences = np.empty(n, dtype=np.int64)
    for i, node in enumerate(all_nodes):
        mention_of[i] = mention_index.setdefault(node.mention, len(mention_index))
        starts[i] = node.mention.token_start
        ends[i] = node.mention.token_end
        sentences[i] = node.mention.sentence_index

    same_mention = mention_of[:, None] == mention_of[None, :]
    overlapping = (starts[:, None] < ends[None, :]) & (
        starts[None, :] < ends[:, None]
    )
    same_sentence = sentences[:, None] == sentences[None, :]
    entity_pair = ~is_predicate[:, None] & ~is_predicate[None, :]
    # Identical concepts carry no coherence evidence: cos(c, c) = 1 would
    # be a degenerate zero-distance shortcut committing both mentions the
    # moment two phrases merely share a candidate.
    concept_index: Dict[str, int] = {}
    concept_of = np.array(
        [
            concept_index.setdefault(node.concept_id, len(concept_index))
            for node in all_nodes
        ]
    )
    same_concept = concept_of[:, None] == concept_of[None, :]
    allowed = (
        ~same_mention
        & ~overlapping
        & ~same_concept
        & (entity_pair | same_sentence)
    )

    weights = np.where(allowed, weights, np.inf)
    if max_neighbours is None or max_neighbours >= n:
        neighbour_sets = [
            np.nonzero(np.isfinite(weights[i]))[0] for i in range(n)
        ]
    else:
        order = np.argsort(weights, axis=1)
        neighbour_sets = [order[i, :max_neighbours] for i in range(n)]

    # Materialise the edges without the per-cell Python loop the kNN
    # selection used to run (get_weight/add_edge per visited cell).  The
    # visited cells in row-major order are the original scan sequence;
    # each unordered pair keeps its *first* visit (which fixes the edge's
    # insertion position and orientation in the graph — downstream
    # tie-breaking depends on both) and the minimum weight over however
    # many directions visited it (which is the value the scan's
    # "overwrite if smaller" update converged to).
    rows = np.repeat(np.arange(n), [len(s) for s in neighbour_sets])
    cols = np.concatenate(neighbour_sets)
    valid = (rows != cols) & np.isfinite(weights[rows, cols])
    rows, cols = rows[valid], cols[valid]
    pair_keys = np.minimum(rows, cols) * n + np.maximum(rows, cols)
    _, first_visit = np.unique(pair_keys, return_index=True)
    first_visit.sort()
    visited = np.zeros((n, n), dtype=bool)
    visited[rows, cols] = True
    final = np.where(
        visited & visited.T, np.minimum(weights, weights.T), weights
    )
    sources, targets = rows[first_visit], cols[first_visit]
    edge_weights = final[sources, targets]
    for i, j, w in zip(
        sources.tolist(), targets.tolist(), edge_weights.tolist()
    ):
        graph.add_edge(all_nodes[i], all_nodes[j], w)
