"""Deadline propagation and cooperative cancellation.

A :class:`Deadline` couples a monotonic expiry with a thread-safe
cancellation token.  The serving layer anchors one per request at
submission and threads it through :meth:`TenetLinker.link`; each
pipeline stage boundary (and the hot inner loops of the tree-cover
solve and the greedy disambiguation) calls :meth:`Deadline.check`,
which raises :class:`DeadlineExceeded` once the deadline has passed or
the token was cancelled.

The exception carries a :class:`PartialLinking` with whatever
intermediate artefacts the pipeline had already produced — if candidate
generation finished, the degraded prior-only answer can be built from
those candidates without recomputing extraction.

This module is a leaf: it must not import the pipeline stages (they all
import it), so the partial artefacts are typed loosely.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class DeadlineExceeded(RuntimeError):
    """A pipeline run crossed its deadline (or was cancelled).

    ``stage`` names the checkpoint that tripped; ``partial`` holds the
    salvageable intermediate artefacts (``None`` when nothing useful was
    produced before the abort).
    """

    def __init__(
        self,
        stage: str,
        deadline: Optional["Deadline"] = None,
        partial: Optional["PartialLinking"] = None,
    ) -> None:
        super().__init__(f"deadline exceeded at stage {stage!r}")
        self.stage = stage
        self.deadline = deadline
        self.partial = partial


@dataclass
class PartialLinking:
    """What an aborted pipeline run managed to produce.

    ``extraction`` / ``candidates`` are the linker's intermediate
    artefacts (``DocumentExtraction`` / ``MentionCandidates``) when the
    corresponding stage completed, else ``None``.  ``stage_seconds``
    records the wall-clock of the stages that did run.
    """

    extraction: Optional[Any] = None
    candidates: Optional[Any] = None
    stage_seconds: Dict[str, float] = field(default_factory=dict)


class Deadline:
    """Monotonic expiry plus a cancellation token.

    ``expires_at`` is a :func:`time.monotonic` instant (``None`` means
    no wall-clock bound: only explicit :meth:`cancel` can trip it).
    All methods are safe to call from any thread; the typical shape is
    one waiter thread cancelling while a worker thread polls
    :meth:`check` at its stage checkpoints.
    """

    __slots__ = ("started", "expires_at", "_cancelled")

    def __init__(self, expires_at: Optional[float] = None) -> None:
        self.started = time.monotonic()
        self.expires_at = expires_at
        self._cancelled = threading.Event()

    @classmethod
    def after(cls, seconds: Optional[float]) -> "Deadline":
        """A deadline *seconds* from now (``None`` = unbounded)."""
        if seconds is None:
            return cls(None)
        if seconds < 0:
            raise ValueError(f"deadline seconds must be >= 0, got {seconds}")
        return cls(time.monotonic() + seconds)

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    def cancel(self) -> None:
        """Trip the token: every subsequent :meth:`check` raises."""
        self._cancelled.set()

    @property
    def expired(self) -> bool:
        if self._cancelled.is_set():
            return True
        return self.expires_at is not None and time.monotonic() >= self.expires_at

    def remaining(self) -> Optional[float]:
        """Seconds left (``None`` = unbounded, ``0.0`` = already over)."""
        if self._cancelled.is_set():
            return 0.0
        if self.expires_at is None:
            return None
        return max(0.0, self.expires_at - time.monotonic())

    def elapsed(self) -> float:
        """Seconds since the deadline was anchored."""
        return time.monotonic() - self.started

    # ------------------------------------------------------------------
    # the checkpoint
    # ------------------------------------------------------------------
    def check(self, stage: str) -> None:
        """Raise :class:`DeadlineExceeded` if expired or cancelled."""
        if self.expired:
            raise DeadlineExceeded(stage, deadline=self)
