"""Linking results shared by TENET and all baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.nlp.spans import Span, SpanKind


@dataclass(frozen=True)
class Link:
    """One linked mention: a span mapped to a KB concept id."""

    span: Span
    concept_id: str
    score: float = field(default=0.0, compare=False)

    @property
    def kind(self) -> SpanKind:
        return self.span.kind

    @property
    def surface(self) -> str:
        return self.span.text


@dataclass
class LinkingResult:
    """Output of one linker on one document.

    ``entity_links`` / ``relation_links`` are the committed linkings
    (Problem 1's N* and R*); ``non_linkable`` are mentions the system
    explicitly reports as new/isolated concepts (scored in Fig. 6(c)).
    """

    entity_links: List[Link] = field(default_factory=list)
    relation_links: List[Link] = field(default_factory=list)
    non_linkable: List[Span] = field(default_factory=list)
    # Wall-clock seconds per pipeline stage (plus a "total" key), filled
    # by the linker so that eval/timing.py and the serving layer's
    # /metrics endpoint report from one source of truth.  Excluded from
    # equality: two runs of the same document are the same result.
    stage_seconds: Dict[str, float] = field(default_factory=dict, compare=False)
    # For a degraded (prior-only) result built after a cooperative
    # cancellation: the pipeline stage whose checkpoint tripped.  Like
    # the timings it is run metadata, not part of the linking answer, so
    # it is excluded from equality and from the deterministic payload.
    aborted_stage: Optional[str] = field(default=None, compare=False)
    # Which disambiguation path produced this result: "exact" (tree
    # cover) or "fast" (pairwise greedy).  Run metadata like the
    # timings — same document through either path may be the same
    # answer — so excluded from equality and the deterministic payload.
    cover_mode: Optional[str] = field(default=None, compare=False)

    @property
    def links(self) -> List[Link]:
        return self.entity_links + self.relation_links

    def entity_mentions(self) -> List[Span]:
        return [link.span for link in self.entity_links]

    def relation_mentions(self) -> List[Span]:
        return [link.span for link in self.relation_links]

    def find_entity(self, surface: str) -> Optional[Link]:
        """First entity link whose surface matches (case-insensitive)."""
        lowered = surface.lower()
        for link in self.entity_links:
            if link.surface.lower() == lowered:
                return link
        return None

    def find_relation(self, surface: str) -> Optional[Link]:
        lowered = surface.lower()
        for link in self.relation_links:
            if link.surface.lower() == lowered:
                return link
        return None

    def entity_clusters(self) -> Dict[str, List[Link]]:
        """Entity links grouped by concept id — the document-level
        co-reference clusters the linking induces (all mentions of the
        same entity, in document order)."""
        clusters: Dict[str, List[Link]] = {}
        for link in self.entity_links:
            clusters.setdefault(link.concept_id, []).append(link)
        for links in clusters.values():
            links.sort(key=lambda l: l.span.token_start)
        return clusters

    def to_json(self, include_timings: bool = True) -> Dict[str, object]:
        """JSON-compatible representation of the result.

        ``include_timings=False`` omits the wall-clock ``timings`` block,
        which is the deterministic form the serving layer uses so that
        identical documents produce byte-identical response bodies.
        """
        def link_payload(link: Link) -> Dict[str, object]:
            return {
                "surface": link.surface,
                "char_start": link.span.char_start,
                "char_end": link.span.char_end,
                "concept_id": link.concept_id,
                "score": link.score,
            }

        payload: Dict[str, object] = {
            "entities": [link_payload(l) for l in self.entity_links],
            "relations": [link_payload(l) for l in self.relation_links],
            "non_linkable": [
                {
                    "surface": span.text,
                    "char_start": span.char_start,
                    "char_end": span.char_end,
                }
                for span in self.non_linkable
            ],
        }
        if include_timings and self.stage_seconds:
            payload["timings"] = dict(self.stage_seconds)
        if include_timings and self.aborted_stage is not None:
            payload["aborted_stage"] = self.aborted_stage
        if include_timings and self.cover_mode is not None:
            payload["cover_mode"] = self.cover_mode
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinkingResult(entities={len(self.entity_links)}, "
            f"relations={len(self.relation_links)}, "
            f"non_linkable={len(self.non_linkable)})"
        )
