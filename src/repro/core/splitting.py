"""Tree splitting (the paper's Algorithms 2 and 3).

Given a mention-rooted tree :math:`T_i` and the bound :math:`B`, the tree
is decomposed into

* a **leftover tree** :math:`L_i` containing the mention root, with
  :math:`\\omega(L_i) \\le B`, and
* a set of **subtrees** :math:`S_i^j` with
  :math:`\\omega(S_i^j) \\in (B, 2B]`.

The paper's pseudo-code walks edges in post order with an explicit stack;
this implementation is the equivalent single post-order pass maintaining,
for every node, the *residual* weight still hanging below it.  At each
node the child "pieces" (connecting edge + residual child subtree) are
bundled greedily:

* a piece heavier than B is flushed alone — it is at most 2B because both
  the edge and the child's residual are bounded by B;
* otherwise pieces accumulate, and the bundle is flushed as soon as it
  exceeds B (it is then at most 2B because the previous bundle weight was
  at most B and the new piece is at most B).

Whatever remains attached at the root (always containing the mention) is
the leftover tree with weight at most B.  Flushed subtrees keep the node
they hang from as their root — trees in a cover may share nodes
(Definition 6), and the shared connector carries no weight.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.tree import RootedTree
from repro.graph.weighted_graph import Node


def split_tree(
    tree: RootedTree, bound: float
) -> Tuple[RootedTree, List[RootedTree]]:
    """Split *tree* into (leftover, subtrees) under *bound*.

    Every edge of *tree* must weigh at most *bound* (guaranteed upstream
    by the edge pruning of Algorithm 1, Step (a)); otherwise the
    (B, 2B] guarantee is impossible and a ``ValueError`` is raised.
    """
    if bound <= 0:
        raise ValueError(f"bound must be positive, got {bound}")
    for edge in tree.edges():
        if edge.weight > bound + 1e-12:
            raise ValueError(
                f"edge ({edge.parent!r}, {edge.child!r}) weighs {edge.weight}"
                f" > bound {bound}; prune edges before splitting"
            )
    if tree.weight() <= bound:
        return _copy_tree(tree), []

    working = _copy_tree(tree)
    subtrees: List[RootedTree] = []
    residual: Dict[Node, float] = {}

    for node in list(working.post_order_nodes()):
        bundle: List[Node] = []
        bundle_weight = 0.0
        kept_weight = 0.0
        for child in working.children(node):
            piece = working.edge_weight_to(child) + residual.get(child, 0.0)
            if piece > bound:
                # Flush this piece alone: (B, 2B] by the edge/residual
                # bounds.
                subtrees.append(_flush(working, node, [child]))
                continue
            bundle.append(child)
            bundle_weight += piece
            if bundle_weight > bound:
                subtrees.append(_flush(working, node, bundle))
                bundle = []
                bundle_weight = 0.0
        kept_weight = bundle_weight
        residual[node] = kept_weight

    return working, subtrees


def _copy_tree(tree: RootedTree) -> RootedTree:
    copy = RootedTree(tree.root)
    stack = list(tree.children(tree.root))
    parent_of = {child: tree.root for child in stack}
    while stack:
        node = stack.pop()
        copy.add_edge(parent_of[node], node, tree.edge_weight_to(node))
        for child in tree.children(node):
            parent_of[child] = node
            stack.append(child)
    return copy


def _flush(working: RootedTree, anchor: Node, children: List[Node]) -> RootedTree:
    """Detach *children* subtrees and return them under a shared *anchor*."""
    flushed = RootedTree(anchor)
    for child in children:
        weight = working.edge_weight_to(child)
        detached = working.detach_subtree(child)
        flushed.add_edge(anchor, child, weight)
        _graft(flushed, detached, child)
    return flushed


def _graft(target: RootedTree, source: RootedTree, at: Node) -> None:
    """Copy all of *source* (rooted at *at*, already present) into *target*."""
    stack = list(source.children(at))
    parent_of = {child: at for child in stack}
    while stack:
        node = stack.pop()
        target.add_edge(parent_of[node], node, source.edge_weight_to(node))
        for child in source.children(node):
            parent_of[child] = node
            stack.append(child)
