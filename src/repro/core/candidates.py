"""Candidate concept generation for extracted mentions.

Implements Sec. 3 Steps 1-2: for each noun phrase, candidate entities are
the KB entities having the phrase as an alias (optionally type-filtered);
for each relational phrase, candidate predicates are looked up through the
phrase's surface variants (full form, auxiliary-stripped, lemmatised), as
the paper's MinIE + lemmatisation pipeline does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.caching import LRUCache
from repro.kb.alias_index import AliasIndex, CandidateHit
from repro.nlp.pipeline import DocumentExtraction
from repro.nlp.spans import Span
from repro.textnorm import normalize_phrase


@dataclass
class MentionCandidates:
    """All mentions of a document with their candidate concepts.

    Mentions with an empty candidate list are kept: they are exactly the
    potential *non-linkable* phrases the paper's Table 2 counts.
    """

    by_mention: Dict[Span, List[CandidateHit]]

    def mentions(self) -> List[Span]:
        return list(self.by_mention)

    def candidates(self, mention: Span) -> List[CandidateHit]:
        return self.by_mention.get(mention, [])

    def linkable_mentions(self) -> List[Span]:
        return [m for m, hits in self.by_mention.items() if hits]

    def non_linkable_mentions(self) -> List[Span]:
        return [m for m, hits in self.by_mention.items() if not hits]

    @property
    def total_candidates(self) -> int:
        return sum(len(hits) for hits in self.by_mention.values())


class CandidateGenerator:
    """Generates :class:`MentionCandidates` from a document extraction."""

    def __init__(
        self,
        alias_index: AliasIndex,
        max_candidates: int = 4,
        min_prior: float = 0.0,
        use_fuzzy: bool = False,
        cache: Optional[LRUCache] = None,
    ) -> None:
        self.alias_index = alias_index
        self.max_candidates = max_candidates
        self.min_prior = min_prior
        self.use_fuzzy = use_fuzzy
        # Injectable memo (see repro.service.cache): keys are the
        # normalised phrase plus everything else the lookup depends on,
        # values are immutable tuples of CandidateHit.  ``None`` leaves
        # behaviour byte-identical to the uncached generator.
        self.cache = cache

    def generate(self, extraction: DocumentExtraction) -> MentionCandidates:
        """Candidates for every noun span and relational phrase."""
        by_mention: Dict[Span, List[CandidateHit]] = {}
        for span in extraction.noun_spans:
            by_mention[span] = self.entity_candidates(span)
        for relation in extraction.relations:
            by_mention[relation.span] = self.predicate_candidates(
                relation.span, relation.surface_variants
            )
        return MentionCandidates(by_mention)

    # ------------------------------------------------------------------
    def entity_candidates(self, span: Span) -> List[CandidateHit]:
        if self.cache is None:
            return self._entity_candidates(span)
        # The alias index normalises the phrase itself, so the
        # normalised form plus the type filter fully determine the hits.
        key = ("entity", normalize_phrase(span.text), span.mention_type)
        hits = self.cache.get_or_compute(
            key, lambda: tuple(self._entity_candidates(span))
        )
        return list(hits)

    def predicate_candidates(
        self, span: Span, surface_variants: Tuple[str, ...] = ()
    ) -> List[CandidateHit]:
        variants = surface_variants or (span.text,)
        if self.cache is None:
            return self._predicate_candidates(variants)
        key = ("predicate",) + tuple(normalize_phrase(v) for v in variants)
        hits = self.cache.get_or_compute(
            key, lambda: tuple(self._predicate_candidates(variants))
        )
        return list(hits)

    # ------------------------------------------------------------------
    def _entity_candidates(self, span: Span) -> List[CandidateHit]:
        hits = self.alias_index.lookup_entities(
            span.text, mention_type=span.mention_type, limit=None
        )
        if not hits and self.use_fuzzy:
            hits = self.alias_index.fuzzy_lookup_entities(span.text)
        return self._filter(hits)

    def _predicate_candidates(
        self, variants: Tuple[str, ...]
    ) -> List[CandidateHit]:
        for variant in variants:
            hits = self.alias_index.lookup_predicates(variant, limit=None)
            if hits:
                return self._filter(hits)
        return []

    def _filter(self, hits: List[CandidateHit]) -> List[CandidateHit]:
        kept = [hit for hit in hits if hit.prior >= self.min_prior]
        return kept[: self.max_candidates]
