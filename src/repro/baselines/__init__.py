"""Baseline systems from the paper's evaluation (Sec. 6.1).

Each baseline is a local reimplementation of the published system's
algorithmic core, run over the same extraction pipeline and KB substrate
as TENET so comparisons are apples-to-apples (the paper likewise feeds
all systems the same documents and KB):

* :class:`~repro.baselines.falcon.FalconLinker` — linguistic rules +
  popularity priors, **no coherence**;
* :class:`~repro.baselines.earl.EarlLinker` — connection-density joint
  linking (GTSP-flavoured), relaxed coherence, no isolated concepts;
* :class:`~repro.baselines.kbpearl.KBPearlLinker` — near-neighbour
  coherence over a document concept graph, entities + predicates;
* :class:`~repro.baselines.mintree.MinTreeLinker` — minimum-spanning-tree
  objective entity disambiguation (pair-linking), entities only;
* :class:`~repro.baselines.qkbfly.QKBflyLinker` — global-coherence dense
  subgraph, entities only (no relation linking, as in the paper).
"""

from repro.baselines.base import BaselineLinker
from repro.baselines.falcon import FalconLinker
from repro.baselines.earl import EarlLinker
from repro.baselines.kbpearl import KBPearlLinker
from repro.baselines.mintree import MinTreeLinker
from repro.baselines.qkbfly import QKBflyLinker

__all__ = [
    "BaselineLinker",
    "FalconLinker",
    "EarlLinker",
    "KBPearlLinker",
    "MinTreeLinker",
    "QKBflyLinker",
]
