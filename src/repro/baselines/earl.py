"""EARL baseline: connection-density joint linking.

EARL (Dubey et al., ISWC 2018) formulates joint entity/relation linking
as a Generalised Travelling Salesman instance over candidate clusters and
approximates it with connection-density features: each candidate is
scored by how densely it connects to the candidate clusters of the other
phrases, blended with its lexical rank.  Every phrase with candidates is
linked — the formulation has no notion of an isolated concept, which is
the failure mode the paper contrasts TENET against.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.base import BaselineLinker
from repro.core.candidates import MentionCandidates
from repro.kb.alias_index import CandidateHit
from repro.nlp.pipeline import DocumentExtraction
from repro.nlp.spans import Span

# Similarity above which two candidates count as "connected" for the
# density features (EARL counts KB hops; our embedding proxy thresholds
# cosine similarity).
_CONNECTION_THRESHOLD = 0.30
_DENSITY_WEIGHT = 0.7


class EarlLinker(BaselineLinker):
    """Connection-density disambiguation (relaxed coherence)."""

    name = "EARL"
    links_relations = True
    detects_isolated = False

    def __init__(self, context, max_candidates: int = 2) -> None:
        # EARL retrieves a shallow candidate list per phrase (its GTSP
        # instance grows with cluster sizes); the paper's low recall
        # partly stems from that cut-off.
        super().__init__(context, max_candidates)

    def _relation_variants(self, span, variants):
        """EARL normalises relational phrases down to the bare head lemma
        before hitting its predicate index; multi-word aliases ("was born
        in", "is the sister city of") are therefore unreachable — the
        dominant cause of its poor relation-linking recall in the paper."""
        from repro.nlp.lemmatizer import lemma_variants

        words = span.text.split()
        content = [w for w in words if w.lower() not in ("is", "was", "the")]
        if not content:
            return (span.text,)
        return tuple(lemma_variants(content[0]))

    def _disambiguate(
        self,
        extraction: DocumentExtraction,
        candidates: MentionCandidates,
    ) -> Dict[Span, CandidateHit]:
        mentions = candidates.mentions()
        chosen: Dict[Span, CandidateHit] = {}
        for mention in mentions:
            hits = candidates.candidates(mention)
            if not hits:
                continue
            best_hit = None
            best_score = float("-inf")
            for hit in hits:
                density = self._connection_density(
                    hit, mention, mentions, candidates
                )
                score = _DENSITY_WEIGHT * density + (1 - _DENSITY_WEIGHT) * hit.prior
                if score > best_score:
                    best_score = score
                    best_hit = hit
            chosen[mention] = best_hit
        return chosen

    def _connection_density(
        self,
        hit: CandidateHit,
        mention: Span,
        mentions: List[Span],
        candidates: MentionCandidates,
    ) -> float:
        """Fraction of other phrases whose *top* candidate connects to
        *hit*.  EARL's connection-count features are computed against each
        cluster's highest-ranked node — cheap, but a wrong top candidate
        poisons the density signal, which is a real failure mode of the
        system."""
        others = [m for m in mentions if m != mention and candidates.candidates(m)]
        if not others:
            return 0.0
        connected = 0
        for other in others:
            top = candidates.candidates(other)[0]
            if (
                self.similarity.similarity(hit.concept_id, top.concept_id)
                >= _CONNECTION_THRESHOLD
            ):
                connected += 1
        return connected / len(others)
