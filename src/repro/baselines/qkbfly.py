"""QKBfly baseline: global-coherence dense subgraph.

QKBfly (Nguyen et al., VLDB 2017) performs on-the-fly KB construction
with entity disambiguation over a *globally coherent* dense subgraph: it
iteratively removes the candidate entity with the weakest total
relatedness to all remaining candidates until each mention keeps one.
Relational phrases are canonicalised against patterns but not linked to
KB predicates, so — as in the paper — this baseline only participates in
entity linking.

Because the objective is global, isolated-but-real entities either get
dragged into the dense core (precision loss) or are dropped as new
concepts when their final coherence is weak (the conservative behaviour
the paper observes on News: fewer links, precision > recall).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.baselines.base import BaselineLinker
from repro.core.candidates import MentionCandidates
from repro.core.linker import LinkingContext
from repro.kb.alias_index import CandidateHit
from repro.nlp.pipeline import DocumentExtraction
from repro.nlp.spans import Span, SpanKind


class QKBflyLinker(BaselineLinker):
    """Dense-subgraph global coherence (entities only)."""

    name = "QKBfly"
    links_relations = False
    detects_isolated = True

    def __init__(
        self,
        context: LinkingContext,
        max_candidates: int = 4,
        coherence_threshold: float = 0.08,
    ) -> None:
        super().__init__(context, max_candidates)
        self.coherence_threshold = coherence_threshold

    def _disambiguate(
        self,
        extraction: DocumentExtraction,
        candidates: MentionCandidates,
    ) -> Dict[Span, CandidateHit]:
        import numpy as np

        mentions = [
            m
            for m in candidates.mentions()
            if m.kind is SpanKind.NOUN and candidates.candidates(m)
        ]
        if not mentions:
            return {}
        # QKBfly pre-computes all pairwise relatedness for the document
        # once (as the paper notes for both QKBfly and TENET), then peels
        # the dense subgraph over the cached matrix.
        store = self.context.embeddings
        flat: List[Tuple[Span, CandidateHit]] = [
            (m, h) for m in mentions for h in candidates.candidates(m)
        ]
        vectors = np.stack(
            [
                np.asarray(store.vector(h.concept_id))
                if h.concept_id in store
                else np.zeros(store.dimension, dtype=np.float32)
                for _, h in flat
            ]
        )
        sims = vectors @ vectors.T
        mention_ids = {m: i for i, m in enumerate(mentions)}
        owner = np.array([mention_ids[m] for m, _ in flat])
        priors = np.array([h.prior for _, h in flat])
        alive_mask = np.ones(len(flat), dtype=bool)

        def supports() -> np.ndarray:
            """support[i] = sum over other mentions of the best alive sim."""
            masked = np.where(alive_mask[None, :], sims, -np.inf)
            result = np.zeros(len(flat))
            for mid in range(len(mentions)):
                columns = np.nonzero(alive_mask & (owner == mid))[0]
                if columns.size == 0:
                    continue
                best = masked[:, columns].max(axis=1)
                result += np.where(owner == mid, 0.0, np.maximum(best, 0.0))
            return result

        # Iteratively peel the globally weakest candidate while its
        # mention retains alternatives (classic dense-subgraph greedy).
        while True:
            counts = np.bincount(owner[alive_mask], minlength=len(mentions))
            peelable = alive_mask & (counts[owner] > 1)
            if not peelable.any():
                break
            scores = supports() + 0.25 * priors
            scores[~peelable] = np.inf
            weakest = int(np.argmin(scores))
            alive_mask[weakest] = False

        final_support = supports()
        chosen: Dict[Span, CandidateHit] = {}
        others = len(mentions) - 1
        for i in np.nonzero(alive_mask)[0]:
            mention, hit = flat[int(i)]
            # Conservative linking: require the survivor to be coherent
            # with the dense core; lonely survivors become new concepts.
            if others == 0 or final_support[int(i)] / max(others, 1) >= (
                self.coherence_threshold
            ):
                chosen[mention] = hit
        return chosen
