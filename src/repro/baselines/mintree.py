"""MINTREE baseline: minimum-spanning-tree entity disambiguation.

MINTREE (Phan et al., TKDE 2018, "pair-linking") observes that coherence
is sparse and models collective disambiguation as a minimum spanning tree
over mention/candidate nodes: edges are picked in non-decreasing weight
order, and picking an edge commits both endpoints' mentions.  Two
properties distinguish it from TENET (per the paper):

* it only handles **entities** (the paper plugs TENET's graph
  construction in for extraction, but relation linking is out of scope);
* the tree objective forces **global connectivity** — every mention must
  eventually join the tree, so isolated concepts cannot be recognised
  and far-fetched links are forced for incoherent mentions.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.baselines.base import BaselineLinker
from repro.core.candidates import MentionCandidates
from repro.kb.alias_index import CandidateHit
from repro.nlp.pipeline import DocumentExtraction
from repro.nlp.spans import Span


class MinTreeLinker(BaselineLinker):
    """Pair-linking over the coherence edge set (entities only)."""

    name = "MINTREE"
    links_relations = False
    detects_isolated = False

    def _disambiguate(
        self,
        extraction: DocumentExtraction,
        candidates: MentionCandidates,
    ) -> Dict[Span, CandidateHit]:
        mentions = [m for m in candidates.mentions() if candidates.candidates(m)]
        hit_index: Dict[Tuple[Span, str], CandidateHit] = {}
        edges: List[Tuple[float, Span, CandidateHit, Span, CandidateHit]] = []

        for mention in mentions:
            for hit in candidates.candidates(mention):
                hit_index[(mention, hit.concept_id)] = hit

        # pair edges: candidate-candidate distances between different
        # mentions (1 - cos), plus each mention's local prior edge encoded
        # as a pair of (mention, hit) with itself.
        for i, a in enumerate(mentions):
            for b in mentions[i + 1 :]:
                for hit_a in candidates.candidates(a):
                    for hit_b in candidates.candidates(b):
                        distance = 1.0 - self.similarity.similarity(
                            hit_a.concept_id, hit_b.concept_id
                        )
                        edges.append((distance, a, hit_a, b, hit_b))

        edges.sort(key=lambda e: (e[0], e[1].token_start, e[3].token_start))
        chosen: Dict[Span, CandidateHit] = {}
        for distance, a, hit_a, b, hit_b in edges:
            if len(chosen) == len(mentions):
                break
            conflict_a = a in chosen and chosen[a].concept_id != hit_a.concept_id
            conflict_b = b in chosen and chosen[b].concept_id != hit_b.concept_id
            if conflict_a or conflict_b:
                continue
            chosen.setdefault(a, hit_a)
            chosen.setdefault(b, hit_b)

        # Forced connectivity: mentions untouched by any pair edge (e.g.
        # single-mention documents) fall back to their prior — the tree
        # must span everything.
        for mention in mentions:
            if mention not in chosen:
                chosen[mention] = candidates.candidates(mention)[0]
        return chosen
