"""Falcon baseline: linguistic rules + priors, no coherence.

Falcon (Sakor et al., NAACL 2019 / Falcon 2.0) links entities and
relations of short text through language-morphology rules and an alias
catalogue, disambiguating *each phrase independently* by popularity.
That is the property the paper stresses ("without coherence assumption"):
the most popular sense always wins, so ambiguous long-text documents hurt
it badly while short questions work acceptably.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.base import BaselineLinker
from repro.core.candidates import MentionCandidates
from repro.kb.alias_index import CandidateHit
from repro.nlp.pipeline import DocumentExtraction
from repro.nlp.spans import Span


class FalconLinker(BaselineLinker):
    """Prior-only disambiguation (no coherence)."""

    name = "Falcon"
    links_relations = True
    detects_isolated = False

    # Falcon's mention spotting is built for short questions: capitalised
    # n-grams up to this length.  Lower-cased topical phrases and long
    # feature-joined titles are outside its recogniser — the source of
    # its low recall on long documents in the paper's Table 3.
    max_mention_tokens = 3

    def select_mentions(self, extraction: DocumentExtraction):
        from repro.nlp.spans import spans_overlap

        mentions = []
        for region in sorted(
            extraction.regions, key=lambda s: (-s.length, s.token_start)
        ):
            span = self._capitalised_prefix(extraction, region)
            if span is None:
                continue
            if any(spans_overlap(span, other) for other in mentions):
                continue
            mentions.append(span)
        for relation in extraction.relations:
            if not any(
                spans_overlap(relation.span, other) for other in mentions
            ):
                mentions.append(relation.span)
        mentions.sort(key=lambda s: s.token_start)
        return mentions

    def _capitalised_prefix(self, extraction: DocumentExtraction, region: Span):
        """Longest capitalised token run inside *region* (<= 3 tokens)."""
        tokens = extraction.tokens
        best = None
        run_start = None
        for i in range(region.token_start, region.token_end + 1):
            capitalised = (
                i < region.token_end and tokens[i].is_capitalized
            )
            if capitalised and run_start is None:
                run_start = i
            elif not capitalised and run_start is not None:
                length = min(i - run_start, self.max_mention_tokens)
                candidate = next(
                    (
                        s
                        for s in extraction.noun_spans
                        if s.token_start == run_start
                        and s.token_end == run_start + length
                    ),
                    None,
                )
                if candidate is not None and (
                    best is None or candidate.length > best.length
                ):
                    best = candidate
                run_start = None
        return best

    def _disambiguate(
        self,
        extraction: DocumentExtraction,
        candidates: MentionCandidates,
    ) -> Dict[Span, CandidateHit]:
        chosen: Dict[Span, CandidateHit] = {}
        for mention in candidates.mentions():
            hits = candidates.candidates(mention)
            if hits:
                # Hits are prior-sorted; Falcon takes the catalogue's most
                # popular reading unconditionally.
                chosen[mention] = hits[0]
        return chosen
