"""KBPearl baseline: near-neighbour coherence.

KBPearl (Lin et al., VLDB 2020) builds a document concept graph and
infers each mention's linking from a *fixed number of near-neighbour
mentions* (the paper's critique: choosing that number is hard, and true
isolated concepts are still forced to agree with their window).

The implementation is deliberately faithful to KBPearl's cost profile as
reported in the paper's Fig. 7: the document graph recomputes pairwise
relatedness from raw embedding vectors (no cross-document cache), so its
runtime grows markedly with document length and mention count —
"KBPearl is more sensitive to the length of the document".

Isolated-concept handling: mentions whose best score falls below an
absolute threshold are reported as new concepts (KBPearl reports
unlinkable phrases as new entities/predicates for KB population).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.baselines.base import BaselineLinker
from repro.core.candidates import MentionCandidates
from repro.core.linker import LinkingContext
from repro.kb.alias_index import CandidateHit
from repro.nlp.pipeline import DocumentExtraction
from repro.nlp.spans import Span


class KBPearlLinker(BaselineLinker):
    """Near-neighbour window coherence (entities + predicates)."""

    name = "KBPearl"
    links_relations = True
    detects_isolated = True

    def __init__(
        self,
        context: LinkingContext,
        max_candidates: int = 4,
        window: int = 4,
        link_threshold: float = 0.22,
    ) -> None:
        super().__init__(context, max_candidates)
        self.window = window
        self.link_threshold = link_threshold

    def _disambiguate(
        self,
        extraction: DocumentExtraction,
        candidates: MentionCandidates,
    ) -> Dict[Span, CandidateHit]:
        mentions = sorted(candidates.mentions(), key=lambda s: s.token_start)
        document_graph = self._build_document_graph(mentions, candidates)
        chosen: Dict[Span, CandidateHit] = {}
        for index, mention in enumerate(mentions):
            hits = candidates.candidates(mention)
            if not hits:
                continue
            neighbours = self._near_neighbours(mentions, index)
            best_hit = None
            best_score = float("-inf")
            for hit in hits:
                coherence = self._window_coherence(
                    hit, neighbours, candidates, document_graph
                )
                score = 0.5 * hit.prior + 0.5 * coherence
                if score > best_score:
                    best_score = score
                    best_hit = hit
            if best_score >= self.link_threshold:
                chosen[mention] = best_hit
        return chosen

    def _build_document_graph(
        self,
        mentions: List[Span],
        candidates: MentionCandidates,
    ) -> Dict[Tuple[str, str], float]:
        """KBPearl's per-document knowledge graph.

        The system materialises *all* pairwise relatedness edges between
        the document's candidate concepts before inference, recomputing
        each value from the raw embedding vectors (no cross-document
        cache) — the source of its length sensitivity in the paper's
        Fig. 7: the construction is quadratic in the candidate count with
        a heavy per-pair constant.
        """
        store = self.context.embeddings
        flat = [
            h
            for m in mentions
            for h in candidates.candidates(m)
            if h.concept_id in store
        ]
        graph: Dict[Tuple[str, str], float] = {}
        for i, a in enumerate(flat):
            for b in flat[i + 1 :]:
                # One recomputation per candidate-pair occurrence, from
                # freshly materialised vectors: KBPearl has no pairwise
                # cache, so repeated concepts are recomputed every time.
                va = np.array(store.vector(a.concept_id))
                vb = np.array(store.vector(b.concept_id))
                value = float(np.dot(va, vb))
                graph[(a.concept_id, b.concept_id)] = value
                graph[(b.concept_id, a.concept_id)] = value
        return graph

    def _near_neighbours(
        self, mentions: List[Span], index: int
    ) -> List[Span]:
        """The *window* mentions closest in document order."""
        lo = max(0, index - self.window)
        hi = min(len(mentions), index + self.window + 1)
        return [m for i, m in enumerate(mentions[lo:hi], lo) if i != index]

    def _window_coherence(
        self,
        hit: CandidateHit,
        neighbours: List[Span],
        candidates: MentionCandidates,
        document_graph: Dict[Tuple[str, str], float],
    ) -> float:
        if not neighbours:
            return 0.0
        total = 0.0
        counted = 0
        for neighbour in neighbours:
            best = 0.0
            for other in candidates.candidates(neighbour):
                value = document_graph.get(
                    (hit.concept_id, other.concept_id), 0.0
                )
                if value > best:
                    best = value
            total += best
            counted += 1
        return total / counted if counted else 0.0
