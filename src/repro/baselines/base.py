"""Shared machinery for baseline linkers.

Baselines consume the same :class:`~repro.core.linker.LinkingContext` and
extraction pipeline as TENET.  What varies is the disambiguation policy,
expressed by each subclass through :meth:`_disambiguate`.

Mention detection for baselines is the conventional *longest-match*
strategy (maximal nominal regions, gazetteer-confirmed sub-spans only
when the region itself has no candidates): none of the published
baselines integrates mention selection with disambiguation, which is
exactly the gap the paper's canopy machinery targets.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.candidates import CandidateGenerator, MentionCandidates
from repro.core.linker import LinkingContext
from repro.core.result import Link, LinkingResult
from repro.embeddings.similarity import SimilarityIndex
from repro.kb.alias_index import CandidateHit
from repro.nlp.pipeline import DocumentExtraction, ExtractionPipeline
from repro.nlp.spans import Span, SpanKind, spans_overlap


class BaselineLinker:
    """Base class: extraction + candidate generation + result assembly."""

    name = "baseline"
    links_relations = True
    detects_isolated = False

    def __init__(
        self,
        context: LinkingContext,
        max_candidates: int = 4,
    ) -> None:
        self.context = context
        self.pipeline = ExtractionPipeline(context.alias_index)
        self.generator = CandidateGenerator(
            context.alias_index, max_candidates=max_candidates
        )
        self.similarity = SimilarityIndex(context.embeddings)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def link(self, text: str) -> LinkingResult:
        extraction = self.pipeline.extract(text)
        mentions = self.select_mentions(extraction)
        candidates = self._candidates_for(extraction, mentions)
        return self._assemble(extraction, candidates)

    def disambiguate_mentions(
        self, text: str, mentions: Sequence[Span]
    ) -> LinkingResult:
        """Fig. 6(b) mode: mentions given, only disambiguation evaluated."""
        extraction = self.pipeline.extract(text)
        candidates = self._candidates_for(extraction, list(mentions))
        return self._assemble(extraction, candidates)

    # ------------------------------------------------------------------
    # policy hook
    # ------------------------------------------------------------------
    def _disambiguate(
        self,
        extraction: DocumentExtraction,
        candidates: MentionCandidates,
    ) -> Dict[Span, CandidateHit]:
        """Return the chosen candidate per mention (subclasses override)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared pieces
    # ------------------------------------------------------------------
    def select_mentions(self, extraction: DocumentExtraction) -> List[Span]:
        """Longest-match mention detection (noun + relation spans)."""
        mentions: List[Span] = []
        regions = sorted(
            extraction.regions, key=lambda s: (-s.length, s.token_start)
        )
        claimed: List[Span] = []
        # Prefer regions that have candidates; fall back to the longest
        # gazetteer sub-span inside a candidate-less region.
        for region in regions:
            if any(spans_overlap(region, c) for c in claimed):
                continue
            if self.generator.entity_candidates(region):
                mentions.append(region)
                claimed.append(region)
                continue
            inner = [
                s
                for s in extraction.noun_spans
                if region.covers(s)
                and not s.same_range(region)
                and self.generator.entity_candidates(s)
            ]
            inner.sort(key=lambda s: (-s.length, s.token_start))
            chosen: List[Span] = []
            for span in inner:
                if any(spans_overlap(span, c) for c in chosen):
                    continue
                chosen.append(span)
            if chosen:
                mentions.extend(chosen)
                claimed.extend(chosen)
            else:
                # keep the region as a (non-linkable) mention
                mentions.append(region)
                claimed.append(region)
        if self.links_relations:
            relation_spans: List[Span] = []
            for relation in extraction.relations:
                if any(
                    spans_overlap(relation.span, other)
                    for other in relation_spans
                ):
                    continue
                relation_spans.append(relation.span)
            mentions.extend(relation_spans)
        mentions.sort(key=lambda s: s.token_start)
        return mentions

    def _candidates_for(
        self, extraction: DocumentExtraction, mentions: Sequence[Span]
    ) -> MentionCandidates:
        by_mention: Dict[Span, List[CandidateHit]] = {}
        for span in mentions:
            if span.kind is SpanKind.NOUN:
                by_mention[span] = self.generator.entity_candidates(span)
            else:
                relation = extraction.relation_for_span(span)
                variants = relation.surface_variants if relation else ()
                by_mention[span] = self.generator.predicate_candidates(
                    span, self._relation_variants(span, variants)
                )
        return MentionCandidates(by_mention)

    def _relation_variants(self, span: Span, variants):
        """Hook: which surface variants to try for predicate lookup."""
        return variants

    def _assemble(
        self, extraction: DocumentExtraction, candidates: MentionCandidates
    ) -> LinkingResult:
        chosen = self._disambiguate(extraction, candidates)
        result = LinkingResult()
        for mention, hit in chosen.items():
            link = Link(mention, hit.concept_id, score=hit.prior)
            if mention.kind is SpanKind.NOUN and hit.kind == "entity":
                result.entity_links.append(link)
            elif mention.kind is SpanKind.RELATION and hit.kind == "predicate":
                result.relation_links.append(link)
        if self.detects_isolated:
            linked = set(chosen)
            result.non_linkable = [
                m for m in candidates.mentions() if m not in linked
            ]
        result.entity_links.sort(key=lambda l: l.span.token_start)
        result.relation_links.sort(key=lambda l: l.span.token_start)
        return result

    # ------------------------------------------------------------------
    # scoring helpers shared by coherence-flavoured baselines
    # ------------------------------------------------------------------
    def _best_coherence(
        self, concept_id: str, hits: Sequence[CandidateHit]
    ) -> float:
        """Max similarity between *concept_id* and any of *hits*."""
        best = 0.0
        for hit in hits:
            value = self.similarity.similarity(concept_id, hit.concept_id)
            if value > best:
                best = value
        return best
