"""Versioned artifact store + warm-start tier for linking contexts.

Public surface of the ``repro.snapshot`` subsystem:

* :class:`SnapshotSpec` — what to build (content-addressed identity);
* :func:`build_snapshot` / :func:`verify_snapshot` /
  :func:`load_snapshot` / :func:`load_or_build` — the store verbs;
* :func:`list_snapshots` / :func:`gc_snapshots` — store maintenance;
* :class:`WarmStart` — a loaded context plus datasets and cache seed;
* :class:`SnapshotManifest` — the on-disk metadata record.
"""

from repro.snapshot.manifest import (
    MANIFEST_NAME,
    SNAPSHOT_SCHEMA_VERSION,
    ArtifactEntry,
    SnapshotManifest,
    SnapshotSchemaError,
)
from repro.snapshot.store import (
    SnapshotError,
    SnapshotIntegrityError,
    SnapshotNotFoundError,
    SnapshotSpec,
    WarmStart,
    build_snapshot,
    gc_snapshots,
    list_snapshots,
    load_or_build,
    load_snapshot,
    verify_snapshot,
)

__all__ = [
    "MANIFEST_NAME",
    "SNAPSHOT_SCHEMA_VERSION",
    "ArtifactEntry",
    "SnapshotManifest",
    "SnapshotSchemaError",
    "SnapshotError",
    "SnapshotIntegrityError",
    "SnapshotNotFoundError",
    "SnapshotSpec",
    "WarmStart",
    "build_snapshot",
    "gc_snapshots",
    "list_snapshots",
    "load_or_build",
    "load_snapshot",
    "verify_snapshot",
]
