"""The snapshot manifest: schema, hashing, and (de)serialisation.

One snapshot directory holds the complete linking context as on-disk
artifacts plus one ``MANIFEST.json`` describing them.  The manifest
carries:

* ``schema_version`` — bumped whenever any artifact layout or manifest
  field changes meaning; readers refuse newer versions instead of
  misinterpreting them;
* ``snapshot_id`` — the content-addressed identity derived from the
  build *spec* (seed, scales, configs, format versions), so the same
  inputs always resolve to the same directory name;
* ``spec`` — the full :class:`~repro.snapshot.store.SnapshotSpec` that
  produced the snapshot, including the ``SyntheticKBConfig``;
* ``artifacts`` — per-artifact relative path, byte size, and SHA-256,
  the integrity record ``snapshot verify`` and every warm-start load
  check before anything is served;
* build metadata — wall-clock build time, creation timestamp, and an
  environment fingerprint.

The manifest is written *last* during a build and the whole directory is
published by a single atomic rename, so a directory containing a
readable manifest is by construction a completely-written snapshot (and
any later corruption is caught by the hashes).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Union

MANIFEST_NAME = "MANIFEST.json"
SNAPSHOT_SCHEMA_VERSION = 1
SNAPSHOT_KIND = "tenet-snapshot"

_HASH_CHUNK = 1 << 20


class SnapshotSchemaError(ValueError):
    """A manifest does not conform to the supported schema."""


def canonical_json(payload: Any) -> str:
    """Deterministic JSON used for hashing: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def sha256_file(path: Union[str, Path]) -> str:
    """Streaming SHA-256 of one file's bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_HASH_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ArtifactEntry:
    """One artifact's integrity record."""

    name: str
    path: str  # POSIX-style, relative to the snapshot directory
    sha256: str
    bytes: int

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "path": self.path,
            "sha256": self.sha256,
            "bytes": self.bytes,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "ArtifactEntry":
        return cls(
            name=str(payload["name"]),
            path=str(payload["path"]),
            sha256=str(payload["sha256"]),
            bytes=int(payload["bytes"]),
        )


@dataclass
class SnapshotManifest:
    """The parsed ``MANIFEST.json`` of one snapshot."""

    snapshot_id: str
    spec: Dict[str, object]
    artifacts: List[ArtifactEntry] = field(default_factory=list)
    schema_version: int = SNAPSHOT_SCHEMA_VERSION
    kind: str = SNAPSHOT_KIND
    created_unix: float = field(default_factory=time.time)
    build_seconds: float = 0.0
    env: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def artifact(self, name: str) -> ArtifactEntry:
        for entry in self.artifacts:
            if entry.name == name:
                return entry
        raise KeyError(f"snapshot has no artifact {name!r}")

    def artifact_names(self) -> List[str]:
        return [entry.name for entry in self.artifacts]

    @property
    def content_digest(self) -> str:
        """One hash over all artifact hashes (rolling-restart fingerprint).

        Two snapshot directories with the same digest hold byte-identical
        artifacts; ``/metrics`` surfaces it so a rolling restart can
        assert every replica serves the same context.
        """
        combined = canonical_json(
            sorted((entry.path, entry.sha256) for entry in self.artifacts)
        )
        return sha256_text(combined)

    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "snapshot_id": self.snapshot_id,
            "created_unix": self.created_unix,
            "build_seconds": self.build_seconds,
            "spec": self.spec,
            "env": self.env,
            "artifacts": [entry.to_json() for entry in self.artifacts],
            "content_digest": self.content_digest,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "SnapshotManifest":
        if not isinstance(payload, dict):
            raise SnapshotSchemaError("manifest must be a JSON object")
        version = payload.get("schema_version")
        if not isinstance(version, int):
            raise SnapshotSchemaError("manifest missing integer schema_version")
        if version > SNAPSHOT_SCHEMA_VERSION:
            raise SnapshotSchemaError(
                f"snapshot schema_version {version} is newer than "
                f"supported {SNAPSHOT_SCHEMA_VERSION}; rebuild the snapshot "
                f"with this code or upgrade"
            )
        if payload.get("kind") != SNAPSHOT_KIND:
            raise SnapshotSchemaError(
                f"manifest kind must be {SNAPSHOT_KIND!r}, "
                f"got {payload.get('kind')!r}"
            )
        for required in ("snapshot_id", "spec", "artifacts"):
            if required not in payload:
                raise SnapshotSchemaError(f"manifest missing field {required!r}")
        artifacts = payload["artifacts"]
        if not isinstance(artifacts, list) or not artifacts:
            raise SnapshotSchemaError("manifest artifacts must be a non-empty list")
        manifest = cls(
            snapshot_id=str(payload["snapshot_id"]),
            spec=dict(payload["spec"]),
            artifacts=[ArtifactEntry.from_json(a) for a in artifacts],
            schema_version=version,
            created_unix=float(payload.get("created_unix", 0.0)),
            build_seconds=float(payload.get("build_seconds", 0.0)),
            env=dict(payload.get("env", {})),
        )
        recorded = payload.get("content_digest")
        if recorded is not None and recorded != manifest.content_digest:
            raise SnapshotSchemaError(
                "manifest content_digest does not match its artifact list "
                "(manifest edited after writing?)"
            )
        return manifest

    # ------------------------------------------------------------------
    def save(self, directory: Union[str, Path]) -> Path:
        path = Path(directory) / MANIFEST_NAME
        path.write_text(json.dumps(self.to_json(), indent=1, sort_keys=True))
        return path

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "SnapshotManifest":
        path = Path(directory) / MANIFEST_NAME
        if not path.is_file():
            raise SnapshotSchemaError(f"no {MANIFEST_NAME} in {directory}")
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise SnapshotSchemaError(f"unparseable manifest {path}: {exc}") from exc
        return cls.from_json(payload)
