"""Content-addressed, versioned on-disk store for linking contexts.

``tenet-repro serve``/``bench``/``link`` historically rebuilt the
synthetic world, alias index, and embeddings from scratch on every
invocation (the bench harness records the cost as
``context_build_seconds``).  This module persists that work once and
warm-starts every later process from disk:

* **artifacts** — KB dump (:mod:`repro.kb.dump`), serialised
  :class:`~repro.kb.alias_index.AliasIndex`, serialised
  :class:`~repro.kb.synthetic.SyntheticWorld` bookkeeping, the trained
  embedding matrix (mmap-loadable via
  :meth:`repro.embeddings.store.EmbeddingStore.load`), the benchmark
  gold sets per dataset scale, and an optional hot-cache seed (phrases
  that pre-populate the alias fuzzy memo);
* **identity** — each snapshot directory is named by a content key
  hashed from the build spec (seed, scales, KB/trainer configs, and all
  on-disk format versions), so identical inputs always resolve to the
  same snapshot and a format bump can never be mistaken for an existing
  one;
* **integrity** — every artifact's SHA-256 lives in the manifest;
  :func:`verify_snapshot` re-hashes everything, and every warm-start
  load verifies first, so a corrupted or half-written snapshot is
  rejected loudly instead of served;
* **atomicity** — a build writes into a hidden temp directory next to
  the target and publishes it with one ``os.replace``; the manifest is
  written last, so no readable snapshot is ever incomplete.

Warm-started output is byte-identical to a cold build: the embeddings
are the exact trained matrix, the alias index round-trips structurally
(posting order preserved), and the canonical KB dump reloads in the
same iteration order the seeded builder produced.
"""

from __future__ import annotations

import json
import shutil
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.linker import LinkingContext
from repro.datasets.benchmarks import (
    build_kore50,
    build_msnbc19,
    build_news,
    build_trex42,
)
from repro.datasets.loaders import (
    FORMAT_VERSION as DATASET_FORMAT_VERSION,
)
from repro.datasets.loaders import (
    load_dataset,
    save_dataset,
)
from repro.datasets.schema import Dataset
from repro.embeddings.store import EmbeddingStore
from repro.embeddings.trainer import TrainerConfig
from repro.kb.alias_index import AliasIndex
from repro.kb.dump import DUMP_FORMAT_VERSION, load_dump, save_dump
from repro.kb.synthetic import (
    WORLD_FORMAT_VERSION,
    SyntheticKBConfig,
    SyntheticWorld,
    build_synthetic_world,
    world_from_json,
    world_to_json,
)
from repro.nlp.spans import SpanKind
from repro.session.workloads import (
    SESSION_WORKLOAD_FORMAT_VERSION,
    build_session_workloads,
)
from repro.snapshot.manifest import (
    MANIFEST_NAME,
    SNAPSHOT_SCHEMA_VERSION,
    ArtifactEntry,
    SnapshotManifest,
    SnapshotSchemaError,
    canonical_json,
    sha256_file,
    sha256_text,
)
from repro.textnorm import normalize_phrase

Echo = Optional[Callable[[str], None]]

#: The four benchmark dataset analogs stored per scale, in suite order.
_DATASET_BUILDERS = (
    ("news", build_news, 1),
    ("t-rex42", build_trex42, 2),
    ("kore50", build_kore50, 3),
    ("msnbc19", build_msnbc19, 4),
)

CACHE_SEED_FORMAT_VERSION = 1


class SnapshotError(RuntimeError):
    """Base error of the snapshot store."""


class SnapshotNotFoundError(SnapshotError):
    """No snapshot exists at the given path / for the given spec."""


class SnapshotIntegrityError(SnapshotError):
    """A snapshot failed hash/size/schema verification.

    ``problems`` carries one human-readable line per failed check.
    """

    def __init__(self, path: Union[str, Path], problems: List[str]) -> None:
        self.path = Path(path)
        self.problems = list(problems)
        summary = "; ".join(self.problems[:3])
        if len(self.problems) > 3:
            summary += f"; ... ({len(self.problems) - 3} more)"
        super().__init__(
            f"snapshot {self.path} failed verification: {summary}"
        )


def _scale_tag(scale: float) -> str:
    return f"s{scale:g}"


@dataclass(frozen=True)
class SnapshotSpec:
    """Everything that determines a snapshot's contents.

    The content key hashed into the snapshot id covers every field here
    *plus* all on-disk format versions, so two specs produce the same id
    exactly when they would produce byte-identical artifacts.
    """

    seed: int = 7
    scales: Tuple[float, ...] = (1.0,)
    kb_config: Optional[SyntheticKBConfig] = None
    trainer_config: TrainerConfig = field(default_factory=TrainerConfig)
    include_cache_seed: bool = True
    cache_seed_limit: int = 512

    def __post_init__(self) -> None:
        if any(s <= 0 for s in self.scales):
            raise ValueError(f"scales must be positive, got {self.scales}")
        if self.cache_seed_limit < 0:
            raise ValueError("cache_seed_limit must be >= 0")

    def resolved_kb_config(self) -> SyntheticKBConfig:
        return self.kb_config or SyntheticKBConfig(seed=self.seed)

    def to_json(self) -> Dict[str, object]:
        kb = self.resolved_kb_config()
        trainer = self.trainer_config
        return {
            "seed": self.seed,
            "scales": sorted(set(self.scales)),
            "kb_config": {
                "domains": list(kb.domains),
                "people_per_domain": kb.people_per_domain,
                "organizations_per_domain": kb.organizations_per_domain,
                "works_per_domain": kb.works_per_domain,
                "awards_per_domain": kb.awards_per_domain,
                "ambiguous_person_pairs": kb.ambiguous_person_pairs,
                "extra_facts_per_domain": kb.extra_facts_per_domain,
                "seed": kb.seed,
            },
            "trainer_config": {
                "dimension": trainer.dimension,
                "sweeps": trainer.sweeps,
                "self_weight": trainer.self_weight,
                "seed": trainer.seed,
            },
            "include_cache_seed": self.include_cache_seed,
            "cache_seed_limit": self.cache_seed_limit,
        }

    def content_key(self) -> str:
        """Canonical JSON of the spec plus all format versions."""
        return canonical_json(
            {
                "spec": self.to_json(),
                "formats": {
                    "snapshot": SNAPSHOT_SCHEMA_VERSION,
                    "kb_dump": DUMP_FORMAT_VERSION,
                    "alias_index": AliasIndex.SERIAL_FORMAT_VERSION,
                    "world": WORLD_FORMAT_VERSION,
                    "dataset": DATASET_FORMAT_VERSION,
                    "cache_seed": CACHE_SEED_FORMAT_VERSION,
                    "session_workloads": SESSION_WORKLOAD_FORMAT_VERSION,
                },
            }
        )

    @property
    def snapshot_id(self) -> str:
        return f"snap-{sha256_text(self.content_key())[:12]}"


@dataclass
class WarmStart:
    """A fully-loaded linking context plus everything around it."""

    path: Path
    manifest: SnapshotManifest
    context: LinkingContext
    world: SyntheticWorld
    #: Gold-set datasets persisted in the snapshot, keyed by scale.
    datasets: Dict[float, List[Dataset]] = field(default_factory=dict)
    #: Session workload payloads persisted in the snapshot, keyed by
    #: scale (absent in snapshots built before the session subsystem).
    session_workloads: Dict[float, Dict[str, object]] = field(
        default_factory=dict
    )
    cache_seed_phrases: List[str] = field(default_factory=list)
    load_seconds: float = 0.0
    #: "warm" when loaded from an existing snapshot, "built" when this
    #: process had to build-and-save it first (the load-or-build path).
    source: str = "warm"

    def seed_fuzzy_cache(self) -> int:
        """Pre-populate the alias fuzzy memo from the hot-cache seed.

        Returns the number of phrases warmed.  The memo is a pure
        function of the phrase, so seeding never changes results — it
        only moves the token-index scans from the first requests to
        startup.
        """
        index = self.context.alias_index
        for phrase in self.cache_seed_phrases:
            index.fuzzy_lookup_entities(phrase)
        return len(self.cache_seed_phrases)

    def datasets_for_scale(self, scale: float) -> List[Dataset]:
        """The four dataset analogs at *scale*.

        Scales persisted in the snapshot load from disk; any other scale
        is regenerated from the reconstructed world, which is
        byte-identical to a cold build because the canonical KB dump
        preserves iteration order (see :mod:`repro.kb.dump`).
        """
        if scale in self.datasets:
            return self.datasets[scale]
        seed = int(self.manifest.spec["seed"])
        return [
            builder(self.world, seed=seed * 100 + offset, scale=scale)
            for _name, builder, offset in _DATASET_BUILDERS
        ]

    def session_workloads_for_scale(self, scale: float) -> Dict[str, object]:
        """The session workload payload at *scale*.

        Scales persisted in the snapshot load from disk; any other scale
        (and snapshots predating the session subsystem) regenerate
        deterministically from the gold sets — the generators are pure
        functions of the documents and the manifest seed.
        """
        if scale in self.session_workloads:
            return self.session_workloads[scale]
        documents = [
            document
            for dataset in self.datasets_for_scale(scale)
            for document in dataset.documents
        ]
        return build_session_workloads(
            documents, seed=int(self.manifest.spec["seed"])
        )

    def info(self) -> Dict[str, object]:
        """JSON-compatible identity block for ``/metrics`` and bench."""
        return {
            "id": self.manifest.snapshot_id,
            "path": str(self.path),
            "schema_version": self.manifest.schema_version,
            "created_unix": self.manifest.created_unix,
            "content_digest": self.manifest.content_digest,
            "source": self.source,
            "load_seconds": self.load_seconds,
            "artifacts": {
                entry.name: entry.sha256 for entry in self.manifest.artifacts
            },
        }


# ---------------------------------------------------------------------------
# build
# ---------------------------------------------------------------------------

def build_snapshot(
    spec: SnapshotSpec,
    root: Union[str, Path],
    echo: Echo = None,
    force: bool = False,
) -> Path:
    """Build every artifact for *spec* and publish it under *root*.

    Returns the snapshot directory.  If the spec's snapshot already
    exists it is returned as-is unless *force* — content addressing
    makes rebuilding the same spec pointless.  The build happens in a
    hidden temp directory and is published with one atomic rename; a
    crash mid-build leaves only a ``.tmp-*`` directory that
    :func:`gc_snapshots` sweeps up, never a half-readable snapshot.
    """
    def say(message: str) -> None:
        if echo is not None:
            echo(message)

    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    target = root / spec.snapshot_id
    if (target / MANIFEST_NAME).is_file():
        if not force:
            say(f"snapshot {spec.snapshot_id} already exists, skipping build")
            return target
        shutil.rmtree(target)

    started = time.perf_counter()
    say(f"building world + context for snapshot {spec.snapshot_id} ...")
    world = build_synthetic_world(spec.resolved_kb_config())
    context = LinkingContext.build(
        world.kb, world.taxonomy, trainer_config=spec.trainer_config
    )

    tmp = root / f".tmp-{spec.snapshot_id}-{uuid.uuid4().hex[:8]}"
    tmp.mkdir()
    try:
        artifacts: List[ArtifactEntry] = []

        def record(name: str, relative: str) -> None:
            path = tmp / relative
            artifacts.append(
                ArtifactEntry(
                    name=name,
                    path=relative,
                    sha256=sha256_file(path),
                    bytes=path.stat().st_size,
                )
            )

        save_dump(world.kb, tmp / "kb.json")
        record("kb", "kb.json")

        (tmp / "world.json").write_text(
            json.dumps(world_to_json(world), indent=1, sort_keys=True)
        )
        record("world", "world.json")

        (tmp / "alias_index.json").write_text(
            json.dumps(context.alias_index.to_json(), indent=1, sort_keys=True)
        )
        record("alias_index", "alias_index.json")

        context.embeddings.save(tmp / "embeddings")
        record("embeddings_matrix", "embeddings/embeddings.npy")
        record("embeddings_ids", "embeddings/ids.json")

        datasets_by_scale: Dict[float, List[Dataset]] = {}
        for scale in sorted(set(spec.scales)):
            say(f"generating gold sets at scale {scale:g} ...")
            scale_dir = tmp / "datasets" / _scale_tag(scale)
            scale_dir.mkdir(parents=True)
            built: List[Dataset] = []
            for name, builder, offset in _DATASET_BUILDERS:
                dataset = builder(
                    world, seed=spec.seed * 100 + offset, scale=scale
                )
                relative = f"datasets/{_scale_tag(scale)}/{name}.json"
                save_dataset(dataset, tmp / relative)
                record(f"dataset:{_scale_tag(scale)}:{name}", relative)
                built.append(dataset)
            datasets_by_scale[scale] = built

            session_dir = tmp / "sessions" / _scale_tag(scale)
            session_dir.mkdir(parents=True)
            workloads = build_session_workloads(
                [doc for dataset in built for doc in dataset.documents],
                seed=spec.seed,
            )
            (session_dir / "workloads.json").write_text(
                json.dumps(workloads, indent=1, sort_keys=True)
            )
            record(
                f"session_workloads:{_scale_tag(scale)}",
                f"sessions/{_scale_tag(scale)}/workloads.json",
            )

        if spec.include_cache_seed and spec.cache_seed_limit > 0:
            phrases = _collect_cache_seed(
                datasets_by_scale, spec.cache_seed_limit
            )
            (tmp / "cache_seed.json").write_text(
                json.dumps(
                    {
                        "format_version": CACHE_SEED_FORMAT_VERSION,
                        "fuzzy_phrases": phrases,
                    },
                    indent=1,
                    sort_keys=True,
                )
            )
            record("cache_seed", "cache_seed.json")

        manifest = SnapshotManifest(
            snapshot_id=spec.snapshot_id,
            spec=spec.to_json(),
            artifacts=artifacts,
            build_seconds=time.perf_counter() - started,
            env=_build_env(),
        )
        manifest.save(tmp)

        try:
            tmp.replace(target)
        except OSError:
            if (target / MANIFEST_NAME).is_file():
                # Concurrent builder won the rename race; same content
                # by construction, so use theirs.
                shutil.rmtree(tmp, ignore_errors=True)
            else:
                raise
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    say(
        f"wrote snapshot {spec.snapshot_id} "
        f"({len(artifacts)} artifacts) to {target}"
    )
    return target


def _collect_cache_seed(
    datasets_by_scale: Dict[float, List[Dataset]], limit: int
) -> List[str]:
    """Distinct normalised entity gold surfaces across all stored scales.

    Sorted for deterministic artifact bytes; capped at *limit* so the
    seed stays a small fraction of the fuzzy memo's capacity.
    """
    phrases = set()
    for datasets in datasets_by_scale.values():
        for dataset in datasets:
            for document in dataset.documents:
                for gold in document.gold:
                    if gold.kind is not SpanKind.NOUN:
                        continue
                    phrase = normalize_phrase(gold.surface)
                    if phrase:
                        phrases.add(phrase)
    return sorted(phrases)[:limit]


def _build_env() -> Dict[str, object]:
    import os
    import platform

    import numpy as np

    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
    }


# ---------------------------------------------------------------------------
# verify
# ---------------------------------------------------------------------------

def verify_snapshot(path: Union[str, Path]) -> List[str]:
    """Re-hash every artifact against the manifest; return all problems.

    An empty list means the snapshot is intact.  Problems cover: an
    unreadable or schema-incompatible manifest, missing artifacts, byte
    size drift, and SHA-256 mismatches — any single corrupted byte in
    any artifact is reported.
    """
    path = Path(path)
    try:
        manifest = SnapshotManifest.load(path)
    except SnapshotSchemaError as exc:
        return [str(exc)]
    problems: List[str] = []
    for entry in manifest.artifacts:
        artifact = path / entry.path
        if not artifact.is_file():
            problems.append(f"missing artifact {entry.path}")
            continue
        size = artifact.stat().st_size
        if size != entry.bytes:
            problems.append(
                f"artifact {entry.path}: size {size} != manifest {entry.bytes}"
            )
        digest = sha256_file(artifact)
        if digest != entry.sha256:
            problems.append(
                f"artifact {entry.path}: sha256 {digest[:12]}... != "
                f"manifest {entry.sha256[:12]}..."
            )
    return problems


# ---------------------------------------------------------------------------
# load
# ---------------------------------------------------------------------------

def load_snapshot(
    path: Union[str, Path],
    mmap: bool = True,
    verify: bool = True,
) -> WarmStart:
    """Load one snapshot directory into a :class:`WarmStart`.

    Integrity is verified *before* anything is deserialised (on by
    default and kept on by every production caller), so a corrupted
    snapshot raises :class:`SnapshotIntegrityError` instead of serving
    wrong answers.  Embeddings are memory-mapped when *mmap* — the
    zero-copy load path that lets N worker processes share one matrix.
    """
    path = Path(path)
    if not (path / MANIFEST_NAME).is_file():
        raise SnapshotNotFoundError(f"no snapshot at {path} (no {MANIFEST_NAME})")
    started = time.perf_counter()
    if verify:
        problems = verify_snapshot(path)
        if problems:
            raise SnapshotIntegrityError(path, problems)
    manifest = SnapshotManifest.load(path)

    kb = load_dump(path / "kb.json")
    world = world_from_json(json.loads((path / "world.json").read_text()), kb)
    alias_index = AliasIndex.from_json(
        json.loads((path / "alias_index.json").read_text()),
        taxonomy=world.taxonomy,
    )
    embeddings = EmbeddingStore.load(path / "embeddings", mmap=mmap)
    context = LinkingContext(kb, alias_index, embeddings, world.taxonomy)

    datasets: Dict[float, List[Dataset]] = {}
    for scale in manifest.spec.get("scales", []):
        scale = float(scale)
        loaded: List[Dataset] = []
        for name, _builder, _offset in _DATASET_BUILDERS:
            loaded.append(
                load_dataset(path / "datasets" / _scale_tag(scale) / f"{name}.json")
            )
        datasets[scale] = loaded

    session_workloads: Dict[float, Dict[str, object]] = {}
    for scale in manifest.spec.get("scales", []):
        scale = float(scale)
        workload_path = path / "sessions" / _scale_tag(scale) / "workloads.json"
        if not workload_path.is_file():
            # Snapshots built before the session subsystem: workloads
            # regenerate on demand (session_workloads_for_scale).
            continue
        payload = json.loads(workload_path.read_text())
        if payload.get("format_version") == SESSION_WORKLOAD_FORMAT_VERSION:
            session_workloads[scale] = payload

    phrases: List[str] = []
    cache_seed = path / "cache_seed.json"
    if cache_seed.is_file():
        payload = json.loads(cache_seed.read_text())
        if payload.get("format_version") == CACHE_SEED_FORMAT_VERSION:
            phrases = [str(p) for p in payload.get("fuzzy_phrases", [])]

    return WarmStart(
        path=path,
        manifest=manifest,
        context=context,
        world=world,
        datasets=datasets,
        session_workloads=session_workloads,
        cache_seed_phrases=phrases,
        load_seconds=time.perf_counter() - started,
    )


def load_or_build(
    path: Union[str, Path],
    spec: SnapshotSpec,
    echo: Echo = None,
    mmap: bool = True,
) -> WarmStart:
    """The warm-start entry point behind every ``--snapshot`` flag.

    *path* may be a specific snapshot directory (it contains a
    manifest) or a store root: for a root, the spec's content-addressed
    snapshot is loaded if present and **built-and-saved first** if not,
    so the first invocation pays the cold build once and every later
    one warm-starts.  A directly-addressed snapshot must match the
    spec's seed — serving a context built from a different world than
    the caller asked for is an error, not a silent substitution.
    """
    path = Path(path)
    if (path / MANIFEST_NAME).is_file():
        warm = load_snapshot(path, mmap=mmap)
        manifest_seed = warm.manifest.spec.get("seed")
        if manifest_seed != spec.seed:
            raise SnapshotError(
                f"snapshot {path} was built with seed {manifest_seed}, "
                f"requested seed {spec.seed}"
            )
        return warm
    target = path / spec.snapshot_id
    if not (target / MANIFEST_NAME).is_file():
        compatible = _find_compatible(path, spec, mmap=mmap)
        if compatible is not None:
            return compatible
        build_snapshot(spec, path, echo=echo)
        warm = load_snapshot(target, mmap=mmap)
        warm.source = "built"
        return warm
    return load_snapshot(target, mmap=mmap)


def _find_compatible(
    root: Path, spec: SnapshotSpec, mmap: bool
) -> Optional[WarmStart]:
    """A stored snapshot differing from *spec* only in dataset scales.

    The persisted scales only decide which gold sets ship inside the
    snapshot — the linking context (KB, alias index, embeddings) is
    identical across them, and gold sets for unstored scales regenerate
    deterministically from the reconstructed world.  So when the exact
    spec is absent, reusing a scales-compatible snapshot beats paying a
    full rebuild.  Corruption still raises (integrity is non-negotiable);
    only schema/format drift falls through to a fresh build.
    """
    wanted = {k: v for k, v in spec.to_json().items() if k != "scales"}
    for entry in list_snapshots(root):
        if "error" in entry:
            continue
        candidate = Path(str(entry["path"]))
        try:
            manifest = SnapshotManifest.load(candidate)
        except SnapshotSchemaError:
            continue
        if {k: v for k, v in manifest.spec.items() if k != "scales"} != wanted:
            continue
        try:
            return load_snapshot(candidate, mmap=mmap)
        except SnapshotIntegrityError:
            raise
        except (ValueError, KeyError):
            # Artifact format drift (older serialisers): not corruption,
            # just unusable by this code — build fresh instead.
            continue
    return None


# ---------------------------------------------------------------------------
# list / gc
# ---------------------------------------------------------------------------

def list_snapshots(root: Union[str, Path]) -> List[Dict[str, object]]:
    """Summaries of every snapshot under *root*, newest first.

    Unreadable or schema-incompatible snapshot directories are included
    with an ``"error"`` field instead of being silently hidden.
    """
    root = Path(root)
    if not root.is_dir():
        return []
    entries: List[Dict[str, object]] = []
    for child in sorted(root.iterdir()):
        if not child.is_dir() or child.name.startswith(".tmp-"):
            continue
        if not (child / MANIFEST_NAME).is_file():
            continue
        try:
            manifest = SnapshotManifest.load(child)
        except SnapshotSchemaError as exc:
            entries.append({"id": child.name, "path": str(child), "error": str(exc)})
            continue
        entries.append(
            {
                "id": manifest.snapshot_id,
                "path": str(child),
                "schema_version": manifest.schema_version,
                "created_unix": manifest.created_unix,
                "build_seconds": manifest.build_seconds,
                "content_digest": manifest.content_digest,
                "seed": manifest.spec.get("seed"),
                "scales": manifest.spec.get("scales"),
                "artifacts": len(manifest.artifacts),
                "bytes": sum(entry.bytes for entry in manifest.artifacts),
            }
        )
    entries.sort(key=lambda e: e.get("created_unix") or 0.0, reverse=True)
    return entries


def gc_snapshots(
    root: Union[str, Path],
    keep: int = 2,
    dry_run: bool = False,
) -> List[Path]:
    """Remove stale state from a store root; return what was (or would be) removed.

    Swept: abandoned ``.tmp-*`` build directories, ``snap-*`` directories
    without a readable manifest (half-deleted or corrupt beyond serving),
    and valid snapshots beyond the *keep* newest by creation time.
    Anything else under the root is left alone.
    """
    if keep < 0:
        raise ValueError(f"keep must be >= 0, got {keep}")
    root = Path(root)
    if not root.is_dir():
        return []
    removals: List[Path] = []
    valid: List[Tuple[float, Path]] = []
    for child in sorted(root.iterdir()):
        if not child.is_dir():
            continue
        if child.name.startswith(".tmp-"):
            removals.append(child)
            continue
        if not child.name.startswith("snap-"):
            continue
        try:
            manifest = SnapshotManifest.load(child)
        except SnapshotSchemaError:
            removals.append(child)
            continue
        valid.append((manifest.created_unix, child))
    valid.sort(key=lambda pair: pair[0], reverse=True)
    removals.extend(path for _created, path in valid[keep:])
    if not dry_run:
        for path in removals:
            shutil.rmtree(path, ignore_errors=True)
    return removals
