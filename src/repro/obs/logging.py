"""JSON-lines structured logging for the serving layer.

One :class:`StructuredLogger` writes one JSON object per line to a
stream (stderr by default), so request logs are machine-parseable —
``jq``-able — instead of ad-hoc prints.  Each record carries a unix
timestamp, a level, an event name, any fields bound on the logger
(e.g. the serving host/port) and the per-call fields (trace id, stage
durations, cache-hit deltas, aborted stage).

A logger with no stream is disabled: every :meth:`log` call returns
immediately, so instrumented code never needs its own guard.  The
``TENET_LOG`` environment variable turns the default engine logger on
(``TENET_LOG=1`` → JSON lines on stderr).
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Any, Dict, IO, Optional

LOG_ENV_VAR = "TENET_LOG"

_FALSY = {"", "0", "false", "no", "off"}


def logging_enabled_by_env() -> bool:
    """``True`` when the ``TENET_LOG`` environment variable is truthy."""
    return os.environ.get(LOG_ENV_VAR, "").strip().lower() not in _FALSY


class StructuredLogger:
    """Thread-safe JSON-lines logger with bindable context fields."""

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        bound: Optional[Dict[str, Any]] = None,
        _lock: Optional[threading.Lock] = None,
    ) -> None:
        self._stream = stream
        self._bound = dict(bound or {})
        # Children share the parent's lock so interleaved writers on one
        # stream still emit whole lines.
        self._lock = _lock or threading.Lock()

    @classmethod
    def from_env(cls) -> "StructuredLogger":
        """Enabled on stderr when ``TENET_LOG`` is set, else disabled."""
        return cls(stream=sys.stderr if logging_enabled_by_env() else None)

    @classmethod
    def disabled(cls) -> "StructuredLogger":
        return cls(stream=None)

    @property
    def enabled(self) -> bool:
        return self._stream is not None

    def bind(self, **fields: Any) -> "StructuredLogger":
        """A child logger whose records always carry *fields*."""
        merged = dict(self._bound)
        merged.update(fields)
        return StructuredLogger(self._stream, merged, _lock=self._lock)

    def log(self, event: str, level: str = "info", **fields: Any) -> None:
        """Emit one JSON line (no-op when disabled).

        ``None``-valued fields are dropped so records stay compact; any
        non-serialisable value falls back to ``str``.
        """
        if self._stream is None:
            return
        record: Dict[str, Any] = {
            "ts": time.time(),
            "level": level,
            "event": event,
        }
        record.update(self._bound)
        record.update(
            (key, value) for key, value in fields.items() if value is not None
        )
        line = json.dumps(record, default=str, separators=(",", ":"))
        with self._lock:
            self._stream.write(line + "\n")
            try:
                self._stream.flush()
            except (OSError, ValueError):  # pragma: no cover - closed stream
                pass

    # Convenience levels --------------------------------------------------
    def info(self, event: str, **fields: Any) -> None:
        self.log(event, level="info", **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log(event, level="warning", **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log(event, level="error", **fields)
