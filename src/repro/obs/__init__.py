"""Observability: request-scoped tracing and structured logging.

A zero-dependency (stdlib-only) layer the core pipeline and the serving
engine record into:

* :class:`Tracer` / :class:`Trace` / :class:`Span` — per-request span
  records at the pipeline's stage boundaries, kept in a bounded ring
  buffer and served at ``GET /debug/traces``;
* :class:`StructuredLogger` — JSON-lines request logging.

See ``docs/observability.md`` for the trace lifecycle and log schema.
"""

from repro.obs.logging import (
    LOG_ENV_VAR,
    StructuredLogger,
    logging_enabled_by_env,
)
from repro.obs.trace import (
    DEFAULT_RING_SIZE,
    TRACE_ENV_VAR,
    Span,
    Trace,
    Tracer,
    new_trace_id,
    tracing_enabled_by_env,
)

__all__ = [
    "DEFAULT_RING_SIZE",
    "LOG_ENV_VAR",
    "Span",
    "StructuredLogger",
    "TRACE_ENV_VAR",
    "Trace",
    "Tracer",
    "logging_enabled_by_env",
    "new_trace_id",
    "tracing_enabled_by_env",
]
