"""Request-scoped tracing: spans, traces, and a bounded ring buffer.

A :class:`Tracer` issues one :class:`Trace` per request; the pipeline
and the serving engine record :class:`Span`\\ s on it at the same stage
boundaries the deadline checkpoints instrumented (extraction, candidate
generation, coherence graph, tree cover, grouping, disambiguation) plus
the engine's queue-wait and cache-lookup bookkeeping.  Finished traces
land in a bounded ring buffer that ``GET /debug/traces`` reads.

Like :mod:`repro.core.deadline`, this module is a **leaf**: it imports
nothing from the pipeline or the service, so the core linker can record
spans without depending on the serving layer.  Everything is stdlib —
no third-party tracing SDK.

The overhead contract: with tracing disabled (``Tracer.start`` returns
``None``) the instrumented code paths reduce to one ``is not None``
check per stage, so the bench trajectory is unaffected; with tracing
enabled, recording a span is one dataclass append — no locks on the hot
path (a ``Trace`` is owned by the single worker that runs the request;
only the ring buffer behind :meth:`Tracer.finish` is shared).
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional

TRACE_ENV_VAR = "TENET_TRACE"
DEFAULT_RING_SIZE = 256

_FALSY = {"", "0", "false", "no", "off"}


def tracing_enabled_by_env() -> bool:
    """``True`` when the ``TENET_TRACE`` environment variable is truthy."""
    return os.environ.get(TRACE_ENV_VAR, "").strip().lower() not in _FALSY


def new_trace_id() -> str:
    """A fresh 16-hex-char request-scoped trace id."""
    return uuid.uuid4().hex[:16]


@dataclass
class Span:
    """One named, timed unit of work inside a trace.

    ``start_offset`` is seconds since the trace was started (monotonic),
    ``duration`` is wall-clock seconds, ``status`` is ``"ok"`` or
    ``"aborted"``.  Attributes carry small scalars (graph sizes,
    candidate counts, cache-hit deltas) — never large payloads.
    """

    name: str
    start_offset: float
    duration: float
    attributes: Dict[str, Any] = field(default_factory=dict)
    status: str = "ok"

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "start_offset_seconds": self.start_offset,
            "duration_seconds": self.duration,
            "status": self.status,
        }
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        return payload


class Trace:
    """The per-request span record.

    A trace is owned by the one worker thread running its request, so
    span recording is lock-free; hand the finished trace back to the
    :class:`Tracer` (whose ring buffer *is* synchronised) via
    :meth:`Tracer.finish`.
    """

    __slots__ = (
        "trace_id",
        "request_id",
        "started_unix",
        "spans",
        "attributes",
        "status",
        "aborted_stage",
        "duration",
        "_started",
        "_finished",
    )

    def __init__(
        self,
        trace_id: Optional[str] = None,
        request_id: Optional[str] = None,
    ) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.request_id = request_id
        self.started_unix = time.time()
        self.spans: List[Span] = []
        self.attributes: Dict[str, Any] = {}
        self.status = "ok"
        self.aborted_stage: Optional[str] = None
        self.duration: Optional[float] = None
        self._started = time.perf_counter()
        self._finished = False

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        """Seconds since the trace was started."""
        return time.perf_counter() - self._started

    def record(
        self,
        name: str,
        duration: float,
        status: str = "ok",
        **attributes: Any,
    ) -> Span:
        """Record a span whose duration was measured by the caller.

        This is what the pipeline uses: each stage is timed once (the
        same ``perf_counter`` pair that feeds
        ``LinkingResult.stage_seconds``) and the identical number is
        recorded here, so span durations and ``stage_timings`` agree
        exactly, not merely within noise.
        """
        span = Span(
            name=name,
            start_offset=max(0.0, self.elapsed() - duration),
            duration=duration,
            attributes=attributes,
            status=status,
        )
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Context manager measuring a span's wall clock itself."""
        started = self.elapsed()
        span = Span(name=name, start_offset=started, duration=0.0,
                    attributes=attributes)
        try:
            yield span
        except BaseException:
            span.status = "aborted"
            raise
        finally:
            span.duration = self.elapsed() - started
            self.spans.append(span)

    def mark_aborted(self, stage: str) -> None:
        """Record that a cooperative cancellation tripped at *stage*."""
        self.status = "aborted"
        self.aborted_stage = stage

    def annotate(self, **attributes: Any) -> None:
        """Attach trace-level attributes (request id, outcome, sizes)."""
        self.attributes.update(attributes)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def stage_durations(self) -> Dict[str, float]:
        """``{span name: duration}`` for quick parity checks and logs."""
        return {span.name: span.duration for span in self.spans}

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "started_unix": self.started_unix,
            "duration_seconds": (
                self.duration if self.duration is not None else self.elapsed()
            ),
            "status": self.status,
            "spans": [span.to_json() for span in self.spans],
        }
        if self.aborted_stage is not None:
            payload["aborted_stage"] = self.aborted_stage
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        return payload


class Tracer:
    """Issues traces and keeps the last *ring_size* finished ones.

    ``enabled=False`` makes :meth:`start` return ``None``, which every
    instrumented call site treats as "don't record" — the disabled
    tracer therefore costs one branch per stage and nothing else.
    """

    def __init__(
        self,
        enabled: bool = True,
        ring_size: int = DEFAULT_RING_SIZE,
    ) -> None:
        if ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {ring_size}")
        self.enabled = enabled
        self.ring_size = ring_size
        self._ring: Deque[Trace] = deque(maxlen=ring_size)
        self._lock = threading.Lock()
        self._recorded = 0

    @classmethod
    def from_env(cls, ring_size: int = DEFAULT_RING_SIZE) -> "Tracer":
        """A tracer whose enablement follows ``TENET_TRACE``."""
        return cls(enabled=tracing_enabled_by_env(), ring_size=ring_size)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, request_id: Optional[str] = None) -> Optional[Trace]:
        """A new trace, or ``None`` when tracing is disabled."""
        if not self.enabled:
            return None
        return Trace(request_id=request_id)

    def finish(self, trace: Optional[Trace]) -> None:
        """Seal *trace* and push it onto the ring (idempotent)."""
        if trace is None:
            return
        with self._lock:
            if trace._finished:
                return
            trace._finished = True
            trace.duration = trace.elapsed()
            self._ring.append(trace)
            self._recorded += 1

    # ------------------------------------------------------------------
    # introspection (the /debug/traces payloads)
    # ------------------------------------------------------------------
    def recent(
        self,
        limit: int = 50,
        slow_seconds: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Newest-first finished traces, optionally filtered.

        ``slow_seconds`` keeps only traces at least that slow (the
        slow-threshold knob of ``GET /debug/traces?slow_seconds=...``);
        ``trace_id`` resolves one specific trace.
        """
        with self._lock:
            traces = list(self._ring)
        traces.reverse()
        selected: List[Dict[str, Any]] = []
        for trace in traces:
            if trace_id is not None and trace.trace_id != trace_id:
                continue
            if (
                slow_seconds is not None
                and (trace.duration or 0.0) < slow_seconds
            ):
                continue
            selected.append(trace.to_json())
            if len(selected) >= limit:
                break
        return selected

    def get(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """The finished trace with *trace_id*, or ``None``."""
        matches = self.recent(limit=1, trace_id=trace_id)
        return matches[0] if matches else None

    def stats(self) -> Dict[str, Any]:
        """JSON-compatible tracer state for ``/metrics``."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "ring_size": self.ring_size,
                "buffered": len(self._ring),
                "recorded_total": self._recorded,
            }
