"""Bootstrap significance testing for system comparisons.

F1 differences on small corpora (16–50 documents, as in the paper) need
uncertainty estimates.  This module provides document-level bootstrap
confidence intervals for a system's F1 and a paired bootstrap test for
the F1 difference between two systems — the standard methodology for
comparing linkers on fixed test sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.result import LinkingResult
from repro.datasets.schema import AnnotatedDocument, Dataset
from repro.eval.metrics import PRF, score_entity_linking


@dataclass(frozen=True)
class BootstrapResult:
    """A point estimate with a bootstrap confidence interval."""

    estimate: float
    low: float
    high: float
    samples: int

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


@dataclass(frozen=True)
class PairedComparison:
    """Paired bootstrap comparison of two systems' F1."""

    f1_a: float
    f1_b: float
    delta: BootstrapResult  # distribution of F1(a) - F1(b)
    p_value: float  # P(delta <= 0) under the bootstrap

    @property
    def significant(self) -> bool:
        """Whether system a beats system b at the 5% level."""
        return self.p_value < 0.05


def _f1_of_counts(counts: np.ndarray) -> float:
    correct, predicted, gold = counts.sum(axis=0)
    precision = correct / predicted if predicted else 0.0
    recall = correct / gold if gold else 0.0
    if precision + recall == 0.0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def _per_document_counts(
    results: Sequence[LinkingResult],
    documents: Sequence[AnnotatedDocument],
    scorer: Callable[[LinkingResult, AnnotatedDocument], PRF],
) -> np.ndarray:
    rows = []
    for result, document in zip(results, documents):
        prf = scorer(result, document)
        rows.append((prf.correct, prf.predicted, prf.gold))
    return np.array(rows, dtype=np.float64)


def bootstrap_f1(
    results: Sequence[LinkingResult],
    documents: Sequence[AnnotatedDocument],
    scorer: Callable[[LinkingResult, AnnotatedDocument], PRF] = score_entity_linking,
    samples: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapResult:
    """Document-level bootstrap CI for a system's micro-F1."""
    counts = _per_document_counts(results, documents, scorer)
    n = len(counts)
    if n == 0:
        return BootstrapResult(0.0, 0.0, 0.0, samples)
    rng = np.random.default_rng(seed)
    estimates = np.empty(samples)
    for i in range(samples):
        index = rng.integers(0, n, size=n)
        estimates[i] = _f1_of_counts(counts[index])
    alpha = (1.0 - confidence) / 2.0
    return BootstrapResult(
        estimate=_f1_of_counts(counts),
        low=float(np.quantile(estimates, alpha)),
        high=float(np.quantile(estimates, 1.0 - alpha)),
        samples=samples,
    )


def paired_bootstrap(
    results_a: Sequence[LinkingResult],
    results_b: Sequence[LinkingResult],
    documents: Sequence[AnnotatedDocument],
    scorer: Callable[[LinkingResult, AnnotatedDocument], PRF] = score_entity_linking,
    samples: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> PairedComparison:
    """Paired bootstrap over documents: is F1(a) - F1(b) > 0 reliably?

    Both systems are resampled with the *same* document indices, which
    accounts for per-document difficulty correlation.
    """
    counts_a = _per_document_counts(results_a, documents, scorer)
    counts_b = _per_document_counts(results_b, documents, scorer)
    n = len(documents)
    rng = np.random.default_rng(seed)
    deltas = np.empty(samples)
    for i in range(samples):
        index = rng.integers(0, n, size=n)
        deltas[i] = _f1_of_counts(counts_a[index]) - _f1_of_counts(
            counts_b[index]
        )
    alpha = (1.0 - confidence) / 2.0
    delta = BootstrapResult(
        estimate=_f1_of_counts(counts_a) - _f1_of_counts(counts_b),
        low=float(np.quantile(deltas, alpha)),
        high=float(np.quantile(deltas, 1.0 - alpha)),
        samples=samples,
    )
    return PairedComparison(
        f1_a=_f1_of_counts(counts_a),
        f1_b=_f1_of_counts(counts_b),
        delta=delta,
        p_value=float(np.mean(deltas <= 0.0)),
    )


def compare_on_dataset(
    linker_a,
    linker_b,
    dataset: Dataset,
    scorer: Callable[[LinkingResult, AnnotatedDocument], PRF] = score_entity_linking,
    samples: int = 1000,
    seed: int = 0,
) -> PairedComparison:
    """Convenience wrapper: run both linkers and compare with the paired
    bootstrap."""
    documents = list(dataset)
    results_a = [linker_a.link(d.text) for d in documents]
    results_b = [linker_b.link(d.text) for d in documents]
    return paired_bootstrap(
        results_a, results_b, documents, scorer, samples=samples, seed=seed
    )
