"""Batch evaluation of linkers over datasets.

``EvaluationRunner`` drives any object with the linker protocol
(``name``, ``link(text) -> LinkingResult``, optionally
``disambiguate_mentions(text, spans)``) over an annotated dataset and
micro-averages the task metrics — the machinery behind Tables 3-4 and
Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence

from repro.core.result import LinkingResult
from repro.datasets.schema import AnnotatedDocument, Dataset
from repro.eval.metrics import (
    PRF,
    aggregate,
    score_entity_linking,
    score_isolated_detection,
    score_mention_detection,
    score_relation_linking,
)
from repro.nlp.sentences import split_sentences
from repro.nlp.spans import Span, SpanKind
from repro.nlp.tokenizer import tokenize


class Linker(Protocol):  # pragma: no cover - typing helper
    name: str

    def link(self, text: str) -> LinkingResult: ...


@dataclass
class SystemScores:
    """Micro-averaged scores of one system on one dataset."""

    system: str
    dataset: str
    entity: PRF = field(default_factory=PRF)
    relation: PRF = field(default_factory=PRF)
    mention_detection: PRF = field(default_factory=PRF)
    isolated: PRF = field(default_factory=PRF)

    def row(self, task: str) -> PRF:
        return getattr(self, task)


class EvaluationRunner:
    """Runs a set of linkers over datasets and aggregates scores."""

    def __init__(self, linkers: Sequence[Linker]) -> None:
        self.linkers = list(linkers)

    def evaluate(self, dataset: Dataset) -> Dict[str, SystemScores]:
        """End-to-end evaluation (Tables 3-4, Fig. 6(a), Fig. 6(c))."""
        scores: Dict[str, SystemScores] = {}
        for linker in self.linkers:
            entity_scores: List[PRF] = []
            relation_scores: List[PRF] = []
            md_scores: List[PRF] = []
            isolated_scores: List[PRF] = []
            for document in dataset:
                result = linker.link(document.text)
                entity_scores.append(score_entity_linking(result, document))
                md_scores.append(score_mention_detection(result, document))
                isolated_scores.append(score_isolated_detection(result, document))
                if dataset.has_relation_gold:
                    relation_scores.append(
                        score_relation_linking(result, document)
                    )
            scores[linker.name] = SystemScores(
                system=linker.name,
                dataset=dataset.name,
                entity=aggregate(entity_scores),
                relation=aggregate(relation_scores),
                mention_detection=aggregate(md_scores),
                isolated=aggregate(isolated_scores),
            )
        return scores

    def evaluate_disambiguation(self, dataset: Dataset) -> Dict[str, PRF]:
        """Disambiguation-only evaluation with gold mentions given
        (Fig. 6(b)); only linkers exposing ``disambiguate_mentions``
        participate."""
        scores: Dict[str, PRF] = {}
        for linker in self.linkers:
            disambiguate = getattr(linker, "disambiguate_mentions", None)
            if disambiguate is None:
                continue
            per_doc: List[PRF] = []
            for document in dataset:
                spans = gold_mentions_to_spans(document, SpanKind.NOUN)
                result = disambiguate(document.text, spans)
                per_doc.append(score_entity_linking(result, document))
            scores[linker.name] = aggregate(per_doc)
        return scores


def gold_mentions_to_spans(
    document: AnnotatedDocument, kind: Optional[SpanKind] = None
) -> List[Span]:
    """Convert gold character annotations into pipeline spans.

    Used to feed gold mentions into disambiguation-only mode: token
    boundaries are recovered from the document's own tokenisation.
    """
    tokens = tokenize(document.text)
    sentences = split_sentences(tokens)
    spans: List[Span] = []
    for gold in document.gold:
        if kind is not None and gold.kind is not kind:
            continue
        covered = [
            t
            for t in tokens
            if t.start < gold.char_end and gold.char_start < t.end
        ]
        if not covered:
            continue
        token_start = covered[0].index
        token_end = covered[-1].index + 1
        sentence_index = 0
        for sentence in sentences:
            if sentence.contains_token(token_start):
                sentence_index = sentence.index
                break
        spans.append(
            Span(
                text=gold.surface,
                token_start=token_start,
                token_end=token_end,
                sentence_index=sentence_index,
                kind=gold.kind,
                char_start=gold.char_start,
                char_end=gold.char_end,
            )
        )
    return spans
