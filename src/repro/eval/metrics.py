"""Precision / recall / F1 metrics for every evaluated task.

Matching protocol (following the paper's Sec. 6.2 notes):

* a predicted link is judged only when its span overlaps some gold
  mention — the datasets annotate only part of the linkable phrases, so
  predictions outside the annotation are *ignored*, not penalised;
* a judged prediction is correct when its concept id equals the
  overlapping gold mention's concept id (and wrong when it overlaps only
  a non-linkable gold, since linking a non-linkable phrase is an error);
* recall is measured over the linkable gold mentions.

Mention detection uses exact character boundaries (the task is exactly
about boundary choice among overlapping candidates); isolated-concept
detection is scored by precision over the judged non-linkable reports,
as in Fig. 6(c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set, Tuple

from repro.core.result import Link, LinkingResult
from repro.datasets.schema import AnnotatedDocument, GoldMention
from repro.nlp.spans import Span, SpanKind


@dataclass
class PRF:
    """Precision, recall and F1 with raw counts."""

    correct: int = 0
    predicted: int = 0
    gold: int = 0

    @property
    def precision(self) -> float:
        return self.correct / self.predicted if self.predicted else 0.0

    @property
    def recall(self) -> float:
        return self.correct / self.gold if self.gold else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0

    def merge(self, other: "PRF") -> "PRF":
        return PRF(
            self.correct + other.correct,
            self.predicted + other.predicted,
            self.gold + other.gold,
        )

    def as_row(self) -> Tuple[float, float, float]:
        return (self.precision, self.recall, self.f1)

    def __repr__(self) -> str:
        return (
            f"PRF(P={self.precision:.3f}, R={self.recall:.3f}, "
            f"F={self.f1:.3f}, {self.correct}/{self.predicted}/{self.gold})"
        )


# ---------------------------------------------------------------------------
# span alignment helpers
# ---------------------------------------------------------------------------

def _span_chars(span: Span) -> Tuple[int, int]:
    if span.char_start < 0:
        raise ValueError(f"span {span.text!r} has no character offsets")
    return span.char_start, span.char_end


def _overlapping_gold(
    span: Span, gold: Sequence[GoldMention], kind: SpanKind
) -> List[GoldMention]:
    start, end = _span_chars(span)
    return [
        g for g in gold if g.kind is kind and g.overlaps_chars(start, end)
    ]


# ---------------------------------------------------------------------------
# linking tasks
# ---------------------------------------------------------------------------

def _score_linking(
    links: Sequence[Link],
    document: AnnotatedDocument,
    kind: SpanKind,
) -> PRF:
    gold = [g for g in document.gold if g.kind is kind]
    linkable = [g for g in gold if g.is_linkable]
    prf = PRF(gold=len(linkable))
    matched: Set[int] = set()
    for link in links:
        overlapping = _overlapping_gold(link.span, gold, kind)
        if not overlapping:
            continue  # outside the annotation: ignored
        prf.predicted += 1
        for g in overlapping:
            if g.concept_id == link.concept_id:
                key = id(g)
                if key not in matched:
                    matched.add(key)
                    prf.correct += 1
                break
        # An overlapping prediction with the wrong concept (or on a
        # non-linkable gold) counts against precision only.
    return prf


def score_entity_linking(
    result: LinkingResult, document: AnnotatedDocument
) -> PRF:
    """End-to-end entity linking (Table 3)."""
    return _score_linking(result.entity_links, document, SpanKind.NOUN)


def score_relation_linking(
    result: LinkingResult, document: AnnotatedDocument
) -> PRF:
    """End-to-end relation linking (Table 4)."""
    return _score_linking(result.relation_links, document, SpanKind.RELATION)


# ---------------------------------------------------------------------------
# mention detection (Fig. 6(a))
# ---------------------------------------------------------------------------

def score_mention_detection(
    result: LinkingResult, document: AnnotatedDocument
) -> PRF:
    """Exact-boundary mention detection over annotated noun phrases.

    A system's detected mentions are its entity-link spans plus its
    explicit non-linkable reports (it "detected" those mentions too).
    """
    gold = [g for g in document.gold if g.kind is SpanKind.NOUN]
    prf = PRF(gold=len(gold))
    spans = [link.span for link in result.entity_links] + [
        s for s in result.non_linkable if s.kind is SpanKind.NOUN
    ]
    matched: Set[int] = set()
    for span in spans:
        overlapping = _overlapping_gold(span, gold, SpanKind.NOUN)
        if not overlapping:
            continue
        prf.predicted += 1
        start, end = _span_chars(span)
        for g in overlapping:
            if g.char_start == start and g.char_end == end:
                key = id(g)
                if key not in matched:
                    matched.add(key)
                    prf.correct += 1
                break
    return prf


# ---------------------------------------------------------------------------
# isolated-concept detection (Fig. 6(c))
# ---------------------------------------------------------------------------

def score_isolated_detection(
    result: LinkingResult, document: AnnotatedDocument
) -> PRF:
    """Precision/recall of explicit non-linkable ("new concept") reports."""
    gold_non_linkable = document.non_linkable_gold()
    prf = PRF(gold=len(gold_non_linkable))
    matched: Set[int] = set()
    for span in result.non_linkable:
        overlapping = [
            g
            for g in document.gold
            if g.overlaps_chars(*_span_chars(span))
        ]
        if not overlapping:
            continue  # outside annotation: ignored
        prf.predicted += 1
        for g in overlapping:
            if not g.is_linkable:
                key = id(g)
                if key not in matched:
                    matched.add(key)
                    prf.correct += 1
                break
    return prf


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------

def aggregate(scores: Iterable[PRF]) -> PRF:
    """Micro-average: sum the raw counts."""
    total = PRF()
    for score in scores:
        total = total.merge(score)
    return total
