"""Coherence-sparsity analysis (the paper's Figs. 4 and 5).

For each distance threshold x in {0.0, 0.1, ..., 0.9}, the document's
gold concepts form a graph with an edge between two concepts whenever
their semantic distance is at most x.  Two metrics are reported,
averaged over documents:

* density  ``Den(C) = 2|E| / (|C| (|C|-1))``;
* average degree  ``2|E| / |C|``.

Low values at moderate thresholds demonstrate the paper's motivating
claim: coherence in real documents is sparse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.datasets.schema import AnnotatedDocument, Dataset
from repro.embeddings.similarity import SimilarityIndex
from repro.nlp.spans import SpanKind

DEFAULT_THRESHOLDS = tuple(round(0.1 * i, 1) for i in range(10))


@dataclass(frozen=True)
class SparsityPoint:
    """Sparsity metrics of one dataset at one distance threshold."""

    threshold: float
    density: float
    average_degree: float


def _document_concepts(
    document: AnnotatedDocument, entities_only: bool
) -> List[str]:
    wanted = (SpanKind.NOUN,) if entities_only else (SpanKind.NOUN, SpanKind.RELATION)
    seen: List[str] = []
    for gold in document.gold:
        if gold.kind in wanted and gold.concept_id is not None:
            if gold.concept_id not in seen:
                seen.append(gold.concept_id)
    return seen


def _document_point(
    concepts: Sequence[str],
    similarity: SimilarityIndex,
    threshold: float,
) -> Optional[SparsityPoint]:
    n = len(concepts)
    if n < 2:
        return None
    edges = 0
    for i in range(n):
        for j in range(i + 1, n):
            if similarity.distance(concepts[i], concepts[j]) <= threshold:
                edges += 1
    density = 2 * edges / (n * (n - 1))
    average_degree = 2 * edges / n
    return SparsityPoint(threshold, density, average_degree)


def sparsity_curve(
    dataset: Dataset,
    similarity: SimilarityIndex,
    entities_only: bool = True,
    thresholds: Iterable[float] = DEFAULT_THRESHOLDS,
) -> List[SparsityPoint]:
    """Average sparsity metrics per threshold over the dataset.

    ``entities_only=True`` reproduces Fig. 4 (entities); ``False``
    reproduces Fig. 5 (all concepts, i.e. entities and predicates).
    """
    per_doc_concepts = [
        _document_concepts(doc, entities_only) for doc in dataset
    ]
    curve: List[SparsityPoint] = []
    for threshold in thresholds:
        points = [
            p
            for concepts in per_doc_concepts
            if (p := _document_point(concepts, similarity, threshold))
            is not None
        ]
        if not points:
            curve.append(SparsityPoint(threshold, 0.0, 0.0))
            continue
        curve.append(
            SparsityPoint(
                threshold,
                sum(p.density for p in points) / len(points),
                sum(p.average_degree for p in points) / len(points),
            )
        )
    return curve
