"""Evaluation harness: metrics, runners, sparsity analysis, timing.

Implements the paper's evaluation protocol (Sec. 6.1-6.2): precision /
recall / F1 over end-to-end entity linking, relation linking, mention
detection, disambiguation-only mode, isolated-concept detection;
coherence-sparsity metrics (density and average degree, Figs. 4-5);
dataset statistics (Table 2); and timing sweeps (Fig. 7).
"""

from repro.eval.metrics import (
    PRF,
    score_entity_linking,
    score_relation_linking,
    score_mention_detection,
    score_isolated_detection,
)
from repro.eval.runner import EvaluationRunner, SystemScores
from repro.eval.sparsity import sparsity_curve, SparsityPoint
from repro.eval.statistics import dataset_statistics, DatasetStatistics
from repro.eval.timing import time_linker, TimingSample
from repro.eval.curves import OperatingPoint, best_f1_point, threshold_curve
from repro.eval.significance import (
    BootstrapResult,
    PairedComparison,
    bootstrap_f1,
    compare_on_dataset,
    paired_bootstrap,
)
from repro.eval.report import render_report

__all__ = [
    "PRF",
    "score_entity_linking",
    "score_relation_linking",
    "score_mention_detection",
    "score_isolated_detection",
    "EvaluationRunner",
    "SystemScores",
    "sparsity_curve",
    "SparsityPoint",
    "dataset_statistics",
    "DatasetStatistics",
    "time_linker",
    "TimingSample",
    "OperatingPoint",
    "best_f1_point",
    "threshold_curve",
    "BootstrapResult",
    "PairedComparison",
    "bootstrap_f1",
    "compare_on_dataset",
    "paired_bootstrap",
    "render_report",
]
