"""Wall-clock timing harness (the paper's Fig. 7).

Times linkers on generated documents of controlled size and reports the
input-size covariates the paper plots against: word count, mention count,
mention-group count, tree-cover edge count, candidates-per-mention.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.linker import TenetLinker


@dataclass(frozen=True)
class TimingSample:
    """One timed linking run with its input-size covariates."""

    system: str
    seconds: float
    words: int
    mentions: int
    groups: Optional[int] = None
    cover_edges: Optional[int] = None
    candidates_per_mention: Optional[int] = None
    stage_seconds: Dict[str, float] = field(default_factory=dict, compare=False)


def time_linker(linker, text: str, repeats: int = 1) -> TimingSample:
    """Time ``linker.link`` on *text* (best of *repeats*).

    Linkers that stamp ``result.stage_seconds`` (TENET does) are timed
    from that record — the single source of truth also surfaced by the
    serving layer's ``/metrics`` — so no second stopwatch is kept here.
    A ``perf_counter`` fallback covers baselines without timings.
    """
    best = float("inf")
    best_stages: Dict[str, float] = {}
    result = None
    for _ in range(max(repeats, 1)):
        started = time.perf_counter()
        result = linker.link(text)
        stages = dict(getattr(result, "stage_seconds", None) or {})
        elapsed = stages.get("total", time.perf_counter() - started)
        if elapsed < best:
            best = elapsed
            best_stages = stages
    words = len(text.split())
    mentions = len(result.links) + len(result.non_linkable)
    return TimingSample(
        system=getattr(linker, "name", type(linker).__name__),
        seconds=best,
        words=words,
        mentions=mentions,
        stage_seconds=best_stages,
    )


def aggregate_stage_seconds(records: Iterable) -> Dict[str, List[float]]:
    """Pool per-stage timing records by stage name.

    Accepts :class:`TimingSample` objects, ``LinkingResult``-style objects
    carrying ``stage_seconds``, or raw ``{stage: seconds}`` mappings — all
    three are views of the same ``LinkingResult.stage_seconds`` record, so
    the Fig. 7 harness, the serving ``/metrics`` feed, and the benchmark
    harness (:mod:`repro.bench`) aggregate from one source of truth.
    """
    pooled: Dict[str, List[float]] = {}
    for record in records:
        stages = getattr(record, "stage_seconds", record)
        for stage, seconds in stages.items():
            pooled.setdefault(stage, []).append(float(seconds))
    return pooled


def time_tenet_detailed(linker: TenetLinker, text: str) -> TimingSample:
    """Time TENET and capture the Fig. 7(c)-(e) covariates."""
    diagnostics = linker.link_detailed(text)
    return TimingSample(
        system=linker.name,
        seconds=diagnostics.elapsed_seconds,
        words=diagnostics.extraction.word_count,
        mentions=diagnostics.mention_count,
        groups=diagnostics.group_count,
        cover_edges=diagnostics.cover_edge_count,
        candidates_per_mention=linker.config.max_candidates,
        stage_seconds=dict(diagnostics.stage_seconds),
    )
