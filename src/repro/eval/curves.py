"""Operating-point curves for TENET's precision/recall trade-off.

TENET's ``prior_link_threshold`` controls how far-fetched a
coherence-free prior may be before the link is withheld — the natural
precision/recall dial of the system.  :func:`threshold_curve` sweeps it
and returns the curve, giving deployments a principled way to pick an
operating point (e.g. KB population wants precision; recall-oriented
annotation wants the permissive end).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.core.config import TenetConfig
from repro.core.linker import LinkingContext, TenetLinker
from repro.datasets.schema import Dataset
from repro.eval.metrics import aggregate, score_entity_linking

DEFAULT_THRESHOLDS = (0.70, 0.80, 0.85, 0.90, 0.95, 1.00)


@dataclass(frozen=True)
class OperatingPoint:
    """One point of the threshold curve."""

    threshold: float
    precision: float
    recall: float
    f1: float


def threshold_curve(
    context: LinkingContext,
    dataset: Dataset,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    base_config: TenetConfig = TenetConfig(),
    scorer: Callable = score_entity_linking,
) -> List[OperatingPoint]:
    """Sweep ``prior_link_threshold`` and score each operating point."""
    import dataclasses

    curve: List[OperatingPoint] = []
    for threshold in thresholds:
        config = dataclasses.replace(
            base_config, prior_link_threshold=threshold
        )
        linker = TenetLinker(context, config)
        scores = aggregate(
            scorer(linker.link(document.text), document)
            for document in dataset
        )
        curve.append(
            OperatingPoint(
                threshold=threshold,
                precision=scores.precision,
                recall=scores.recall,
                f1=scores.f1,
            )
        )
    return curve


def best_f1_point(curve: Sequence[OperatingPoint]) -> OperatingPoint:
    """The operating point with the best F1."""
    if not curve:
        raise ValueError("empty curve")
    return max(curve, key=lambda p: p.f1)
