"""Dataset statistics (the paper's Table 2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.datasets.schema import Dataset
from repro.nlp.spans import SpanKind


@dataclass(frozen=True)
class DatasetStatistics:
    """One row of Table 2."""

    name: str
    nouns_per_document: float
    noun_count: int
    non_linkable_nouns: int
    relations_per_document: Optional[float]
    relation_count: Optional[int]
    non_linkable_relations: Optional[int]
    words_per_document: float

    @property
    def non_linkable_noun_fraction(self) -> float:
        return self.non_linkable_nouns / self.noun_count if self.noun_count else 0.0

    @property
    def non_linkable_relation_fraction(self) -> Optional[float]:
        if self.relation_count is None or not self.relation_count:
            return None
        return self.non_linkable_relations / self.relation_count


def dataset_statistics(dataset: Dataset) -> DatasetStatistics:
    """Compute the Table 2 row for *dataset* from its gold annotations."""
    noun_count = 0
    non_linkable_nouns = 0
    relation_count = 0
    non_linkable_relations = 0
    for document in dataset:
        for gold in document.gold:
            if gold.kind is SpanKind.NOUN:
                noun_count += 1
                if not gold.is_linkable:
                    non_linkable_nouns += 1
            else:
                relation_count += 1
                if not gold.is_linkable:
                    non_linkable_relations += 1
    docs = max(len(dataset), 1)
    has_relations = dataset.has_relation_gold
    return DatasetStatistics(
        name=dataset.name,
        nouns_per_document=noun_count / docs,
        noun_count=noun_count,
        non_linkable_nouns=non_linkable_nouns,
        relations_per_document=(relation_count / docs) if has_relations else None,
        relation_count=relation_count if has_relations else None,
        non_linkable_relations=(
            non_linkable_relations if has_relations else None
        ),
        words_per_document=dataset.words_per_document,
    )
