"""Markdown report rendering for evaluation runs.

Turns :class:`~repro.eval.runner.SystemScores` maps and
:class:`~repro.analysis.errors.ErrorReport` objects into a single
markdown document — the artefact a reproduction run hands to a reviewer.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional

from repro.analysis.errors import ErrorReport
from repro.eval.metrics import PRF
from repro.eval.runner import SystemScores
from repro.eval.statistics import DatasetStatistics


def _prf_cell(prf: PRF) -> str:
    return f"{prf.precision:.3f} / {prf.recall:.3f} / {prf.f1:.3f}"


def render_statistics(stats: Iterable[DatasetStatistics]) -> List[str]:
    """Table 2-style markdown rows."""
    lines = [
        "| Dataset | n./doc | non-linkable nouns | re./doc | "
        "non-linkable relations | words/doc |",
        "|---|---|---|---|---|---|",
    ]
    for s in stats:
        relations = (
            f"{s.relations_per_document:.2f}"
            if s.relations_per_document is not None
            else "N.A."
        )
        nl_relations = (
            f"{100 * s.non_linkable_relation_fraction:.1f}%"
            if s.non_linkable_relation_fraction is not None
            else "N.A."
        )
        lines.append(
            f"| {s.name} | {s.nouns_per_document:.2f} | "
            f"{100 * s.non_linkable_noun_fraction:.1f}% | {relations} | "
            f"{nl_relations} | {s.words_per_document:.1f} |"
        )
    return lines


def render_task_table(
    scores_by_dataset: Mapping[str, Mapping[str, SystemScores]],
    task: str,
    title: str,
) -> List[str]:
    """One P/R/F markdown table for a task over all datasets."""
    datasets = list(scores_by_dataset)
    systems: List[str] = []
    for by_system in scores_by_dataset.values():
        for name in by_system:
            if name not in systems:
                systems.append(name)
    lines = [f"### {title}", ""]
    lines.append("| System | " + " | ".join(datasets) + " |")
    lines.append("|---" * (len(datasets) + 1) + "|")
    for system in systems:
        cells = []
        for dataset in datasets:
            entry = scores_by_dataset[dataset].get(system)
            if entry is None:
                cells.append("—")
                continue
            prf = entry.row(task)
            cells.append(_prf_cell(prf) if prf.predicted or prf.gold else "—")
        lines.append(f"| {system} | " + " | ".join(cells) + " |")
    lines.append("")
    return lines


def render_error_report(report: ErrorReport, top: int = 5) -> List[str]:
    """Error-profile section for one system/dataset pair."""
    lines = [
        f"### Error profile — {report.system} on {report.dataset}",
        "",
        f"Per-mention accuracy: **{report.accuracy:.3f}**",
        "",
        "| Diagnosis | count |",
        "|---|---|",
    ]
    for diagnosis, count in sorted(
        report.counts().items(), key=lambda kv: -kv[1]
    ):
        lines.append(f"| {diagnosis.value} | {count} |")
    samples = report.errors()[:top]
    if samples:
        lines.extend(["", "Sample errors:", ""])
        for case in samples:
            lines.append(
                f"* `{case.surface}` ({case.doc_id}): "
                f"{case.diagnosis.value} — gold `{case.gold_concept}`, "
                f"predicted `{case.predicted_concept}`"
            )
    lines.append("")
    return lines


def render_breakdown(breakdown) -> List[str]:
    """Markdown rows for a :class:`repro.analysis.breakdown.Breakdown`."""
    lines = [
        f"### {breakdown.system} on {breakdown.dataset} — by {breakdown.dimension}",
        "",
        "| category | accuracy | n |",
        "|---|---|---|",
    ]
    for category in breakdown.categories():
        lines.append(
            f"| {category} | {breakdown.accuracy(category):.3f} | "
            f"{breakdown.total[category]} |"
        )
    lines.append("")
    return lines


def render_report(
    scores_by_dataset: Mapping[str, Mapping[str, SystemScores]],
    statistics: Optional[Iterable[DatasetStatistics]] = None,
    error_reports: Iterable[ErrorReport] = (),
    breakdowns: Iterable = (),
    title: str = "TENET reproduction report",
) -> str:
    """The full markdown document."""
    lines: List[str] = [f"# {title}", ""]
    if statistics is not None:
        lines.extend(["## Dataset statistics", ""])
        lines.extend(render_statistics(statistics))
        lines.append("")
    lines.extend(["## End-to-end results", ""])
    lines.extend(
        render_task_table(
            scores_by_dataset, "entity", "Entity linking (P / R / F)"
        )
    )
    lines.extend(
        render_task_table(
            scores_by_dataset, "relation", "Relation linking (P / R / F)"
        )
    )
    lines.extend(
        render_task_table(
            scores_by_dataset,
            "mention_detection",
            "Mention detection (P / R / F)",
        )
    )
    error_reports = list(error_reports)
    if error_reports:
        lines.extend(["## Error analysis", ""])
        for report in error_reports:
            lines.extend(render_error_report(report))
    breakdowns = list(breakdowns)
    if breakdowns:
        lines.extend(["## Performance breakdowns", ""])
        for breakdown in breakdowns:
            lines.extend(render_breakdown(breakdown))
    return "\n".join(lines) + "\n"
