"""TENET: joint entity and relation linking with coherence relaxation.

Reproduction of Lin, Chen & Zhang, SIGMOD 2021.  The public entry points:

>>> from repro import build_synthetic_world, LinkingContext, TenetLinker
>>> world = build_synthetic_world()
>>> context = LinkingContext.build(world.kb, world.taxonomy)
>>> linker = TenetLinker(context)
>>> result = linker.link("Some document text.")

Sub-packages:

* ``repro.kb`` — triple store, alias index, synthetic world (the
  Wikidata-dump substrate);
* ``repro.embeddings`` — deterministic graph embeddings (the
  PyTorch-BigGraph substrate);
* ``repro.nlp`` — the rule-based extraction pipeline (the
  NLTK/spaCy/MinIE substrate);
* ``repro.graph`` — union-find, Kruskal MST, Hopcroft-Karp, Dijkstra,
  rooted trees;
* ``repro.core`` — the paper's contribution: coherence graph, tree
  cover, canopies, greedy disambiguation, the ``TenetLinker`` facade;
* ``repro.baselines`` — Falcon, EARL, KBPearl, MINTREE, QKBfly;
* ``repro.datasets`` — synthetic analogs of News / T-REx42 / KORE50 /
  MSNBC19;
* ``repro.eval`` — metrics, runners, sparsity analysis, timing;
* ``repro.service`` — the concurrent serving layer: request schema,
  cross-request caches, thread-pooled engine with deadlines and
  micro-batching, metrics, and the ``tenet-repro serve`` HTTP server;
* ``repro.population`` / ``repro.qa`` — the downstream applications the
  paper motivates (KB population, question answering).
"""

from repro.core.config import TenetConfig
from repro.core.linker import LinkingContext, TenetLinker
from repro.core.result import Link, LinkingResult
from repro.kb.synthetic import SyntheticKBConfig, build_synthetic_world

__version__ = "1.0.0"

__all__ = [
    "TenetConfig",
    "LinkingContext",
    "TenetLinker",
    "Link",
    "LinkingResult",
    "SyntheticKBConfig",
    "build_synthetic_world",
    "__version__",
]
