"""Command-line interface for the TENET reproduction.

Installed as ``tenet-repro`` (see ``pyproject.toml``); also runnable as
``python -m repro.cli``.  Sub-commands:

* ``world``     — build the synthetic world and save its JSON dump;
* ``datasets``  — generate the four benchmark dataset analogs as JSON;
* ``link``      — link a document (text argument, file, or stdin) and
  print the result as JSON; ``--jsonl`` switches to batch mode (one
  document per input line, one result JSON per output line) over a
  single warm context; ``--stream`` feeds the document through an
  incremental session chunk by chunk, printing one progress line per
  increment before the final result (see ``docs/sessions.md``);
* ``evaluate``  — run the end-to-end evaluation (Tables 3-4) for a
  chosen set of systems and print P/R/F rows;
* ``stats``     — print the Table 2 dataset statistics;
* ``serve``     — run the JSON-over-HTTP linking service, with
  admission-control flags (``--max-queue``, ``--rate-limit``,
  ``--degrade-queue``/``--degrade-p95``; see ``docs/serving.md``) and
  stateful session endpoints behind ``--sessions`` (``--session-max``,
  ``--session-ttl``, ``--session-mode``; see ``docs/sessions.md``);
* ``bench``     — run the benchmark harness and write a schema-versioned
  ``BENCH_<rev>.json`` (``--load`` adds a load-generator pass against an
  in-process server); ``bench compare A.json B.json`` diffs two such
  records and exits non-zero past the regression threshold;
  ``bench load --url`` drives a live server and asserts the overload
  SLOs (no 5xx, Retry-After on every 429, bounded p99; see
  ``docs/benchmarking.md``); ``--session`` adds the incremental-session
  pass with its amortized-speedup numbers and final-state parity gate;
* ``snapshot``  — manage the versioned artifact store
  (``build``/``verify``/``list``/``gc``, see ``docs/snapshots.md``).

``link``, ``serve``, and ``bench`` accept ``--snapshot DIR`` to
warm-start the linking context from the store instead of rebuilding the
world, alias index, and embeddings (load-or-build: the first run against
an empty store pays the cold build once and persists it).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from repro.baselines import (
    EarlLinker,
    FalconLinker,
    KBPearlLinker,
    MinTreeLinker,
    QKBflyLinker,
)
from repro.core.config import TenetConfig
from repro.core.linker import LinkingContext, TenetLinker
from repro.datasets.benchmarks import build_benchmark_suite
from repro.datasets.loaders import save_dataset
from repro.eval.runner import EvaluationRunner
from repro.eval.statistics import dataset_statistics
from repro.kb.dump import save_dump
from repro.kb.synthetic import SyntheticKBConfig, build_synthetic_world

SYSTEM_FACTORIES = {
    "falcon": FalconLinker,
    "qkbfly": QKBflyLinker,
    "kbpearl": KBPearlLinker,
    "earl": EarlLinker,
    "mintree": MinTreeLinker,
    "tenet": TenetLinker,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tenet-repro",
        description="TENET joint entity and relation linking (SIGMOD 2021 reproduction)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="world seed (default: 7)"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    world_parser = subparsers.add_parser(
        "world", help="build the synthetic world and save its JSON dump"
    )
    world_parser.add_argument("output", type=Path, help="dump file path")

    ds_parser = subparsers.add_parser(
        "datasets", help="generate the benchmark dataset analogs"
    )
    ds_parser.add_argument("output_dir", type=Path)
    ds_parser.add_argument("--scale", type=float, default=1.0)

    link_parser = subparsers.add_parser("link", help="link one document")
    link_parser.add_argument(
        "text", nargs="?", help="document text (omit to read stdin)"
    )
    link_parser.add_argument(
        "--file", type=Path, help="read the document from a file"
    )
    link_parser.add_argument(
        "--system",
        choices=sorted(SYSTEM_FACTORIES),
        default="tenet",
    )
    link_parser.add_argument(
        "--max-candidates", type=int, default=4, metavar="K"
    )
    link_parser.add_argument(
        "--cover-mode",
        choices=("exact", "fast", "auto"),
        default="exact",
        help="disambiguation path: exact = the paper's tree-cover "
        "pipeline, fast = pairwise greedy (skips the cover), auto = "
        "route low-ambiguity documents fast (tenet only)",
    )
    link_parser.add_argument(
        "--jsonl",
        action="store_true",
        help="batch mode: one document per input line, one result JSON "
        "per output line, all linked over a single warm context",
    )
    link_parser.add_argument(
        "--stream",
        action="store_true",
        help="feed the document through an incremental session in "
        "--chunks sentence-aligned pieces, printing one progress line "
        "per increment before the final result (tenet only)",
    )
    link_parser.add_argument(
        "--chunks",
        type=int,
        default=4,
        metavar="K",
        help="chunks per streamed document (with --stream; default 4)",
    )
    link_parser.add_argument(
        "--stream-mode",
        choices=("full", "scoped"),
        default="full",
        help="session solve mode (with --stream): full = byte-parity "
        "relink, scoped = dirty-region re-solve (default full)",
    )
    link_parser.add_argument(
        "--snapshot",
        type=Path,
        default=None,
        metavar="DIR",
        help="warm-start the context from this snapshot store (or a "
        "specific snapshot directory) instead of rebuilding",
    )

    eval_parser = subparsers.add_parser(
        "evaluate", help="run the Tables 3-4 evaluation"
    )
    eval_parser.add_argument("--scale", type=float, default=1.0)
    eval_parser.add_argument(
        "--systems",
        default="falcon,qkbfly,kbpearl,earl,mintree,tenet",
        help="comma-separated subset of systems",
    )
    eval_parser.add_argument(
        "--datasets",
        default="news,t-rex42,kore50,msnbc19",
        help="comma-separated subset of datasets",
    )

    stats_parser = subparsers.add_parser(
        "stats", help="print the Table 2 dataset statistics"
    )
    stats_parser.add_argument("--scale", type=float, default=1.0)

    validate_parser = subparsers.add_parser(
        "validate", help="validate a dataset JSON against a KB dump"
    )
    validate_parser.add_argument("dataset", type=Path)
    validate_parser.add_argument(
        "--kb", type=Path, help="KB dump to check concept ids against"
    )

    serve_parser = subparsers.add_parser(
        "serve", help="run the JSON-over-HTTP linking service"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8080)
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="linker worker threads (with --cluster: worker processes)",
    )
    serve_parser.add_argument(
        "--cluster",
        action="store_true",
        help="shard linking across --workers processes, each warm-started "
        "from one shared snapshot artifact (built ephemerally when "
        "--snapshot is not given)",
    )
    serve_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-request deadline (on expiry the request is "
        "answered by the prior-only fallback)",
    )
    serve_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the cross-request candidate/similarity caches",
    )
    serve_parser.add_argument(
        "--trace",
        action="store_true",
        help="enable request-scoped tracing (X-Trace-Id header and "
        "GET /debug/traces) regardless of TENET_TRACE",
    )
    serve_parser.add_argument(
        "--max-candidates", type=int, default=4, metavar="K"
    )
    serve_parser.add_argument(
        "--snapshot",
        type=Path,
        default=None,
        metavar="DIR",
        help="warm-start the context from this snapshot store (or a "
        "specific snapshot directory); the snapshot identity is "
        "surfaced on /metrics",
    )
    serve_parser.add_argument(
        "--max-queue",
        type=int,
        default=None,
        metavar="N",
        help="interactive admission queue bound (beyond it: 429 queue_full)",
    )
    serve_parser.add_argument(
        "--batch-max-queue",
        type=int,
        default=None,
        metavar="N",
        help="batch-lane admission queue bound",
    )
    serve_parser.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        metavar="RPS",
        help="per-client token-bucket refill rate (keyed on X-Client-Id; "
        "off by default)",
    )
    serve_parser.add_argument(
        "--rate-limit-burst",
        type=int,
        default=None,
        metavar="N",
        help="per-client token-bucket capacity (default 8)",
    )
    serve_parser.add_argument(
        "--degrade-queue",
        type=int,
        default=None,
        metavar="N",
        help="queue depth at which the service enters degraded mode "
        "(prior-only answers; exits at a quarter of this depth)",
    )
    serve_parser.add_argument(
        "--degrade-p95",
        type=float,
        default=None,
        metavar="SECONDS",
        help="observed p95 latency that triggers degraded mode "
        "(exits at half this value)",
    )
    serve_parser.add_argument(
        "--sessions",
        action="store_true",
        help="enable stateful streaming/conversation sessions "
        "(POST /session/{id}/feed, GET/DELETE /session/{id}; "
        "see docs/sessions.md)",
    )
    serve_parser.add_argument(
        "--session-max",
        type=int,
        default=None,
        metavar="N",
        help="live sessions before LRU eviction (default 64)",
    )
    serve_parser.add_argument(
        "--session-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="idle seconds before a session is evicted (default 600)",
    )
    serve_parser.add_argument(
        "--session-mode",
        choices=("full", "scoped"),
        default=None,
        help="session solve mode: full = byte-parity relink of the "
        "accumulated text, scoped = dirty-region re-solve (default full)",
    )

    bench_parser = subparsers.add_parser(
        "bench",
        help="run the benchmark harness (or `bench compare A.json B.json`)",
    )
    bench_parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke profile: small scales, one repeat, no warmup",
    )
    bench_parser.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="FILE",
        help="bench JSON path (default: BENCH_<git rev>.json)",
    )
    bench_parser.add_argument(
        "--scales",
        default=None,
        metavar="S1,S2,...",
        help="comma-separated dataset scale factors (overrides the profile)",
    )
    bench_parser.add_argument(
        "--repeats", type=int, default=None, help="timed passes per scale"
    )
    bench_parser.add_argument(
        "--warmup", type=int, default=None, help="untimed warmup passes"
    )
    bench_parser.add_argument(
        "--workers", type=int, default=None, help="service throughput workers"
    )
    bench_parser.add_argument(
        "--cluster",
        action="store_true",
        help="also run the multi-process cluster pass: docs/s at 1 and at "
        "--workers worker processes over one shared snapshot, plus the "
        "byte-parity check against the single-process engine (the "
        "record's `cluster` block)",
    )
    bench_parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="also measure the degraded path: link the corpus through a "
        "service whose per-request deadline is SECONDS and record the "
        "cancellation counters and degraded-path latency",
    )
    bench_parser.add_argument(
        "--trace",
        action="store_true",
        help="also run a traced pass: per-stage span statistics and the "
        "span-vs-stage_seconds parity delta land in the record",
    )
    bench_parser.add_argument(
        "--load",
        action="store_true",
        help="also run the load generator against an in-process HTTP "
        "server; goodput/shed/latency land in the record's `load` block",
    )
    bench_parser.add_argument(
        "--load-mode",
        choices=("closed", "open"),
        default="closed",
        help="closed = fixed concurrency, open = fixed-QPS arrivals "
        "(default: closed)",
    )
    bench_parser.add_argument(
        "--load-duration",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="load-generation window (default 5s)",
    )
    bench_parser.add_argument(
        "--load-concurrency",
        type=int,
        default=4,
        metavar="N",
        help="closed-loop clients / open-loop in-flight floor (default 4)",
    )
    bench_parser.add_argument(
        "--load-qps",
        type=float,
        default=20.0,
        metavar="RPS",
        help="open-loop arrival rate (default 20)",
    )
    bench_parser.add_argument("--label", default="", help="freeform run label")
    bench_parser.add_argument(
        "--snapshot",
        type=Path,
        default=None,
        metavar="DIR",
        help="warm-start the context and gold sets from this snapshot "
        "store; context_build_seconds then measures the snapshot load",
    )
    bench_parser.add_argument(
        "--no-scalar-baseline",
        action="store_true",
        help="skip the batch-vs-scalar coherence comparison",
    )
    bench_parser.add_argument(
        "--no-routing",
        action="store_true",
        help="skip the cover-mode routing pass (router counts + "
        "full-vs-routed F1 parity gate)",
    )
    bench_parser.add_argument(
        "--routing-tolerance",
        type=float,
        default=None,
        metavar="F1",
        help="max absolute F1 drift the routed pass may show against "
        "the full pipeline (default 0.005)",
    )
    bench_parser.add_argument(
        "--cover-mode",
        choices=("exact", "fast", "auto"),
        default="exact",
        help="cover mode the timed passes run with (the routing pass "
        "always benchmarks the router; default exact)",
    )
    bench_parser.add_argument(
        "--session",
        action="store_true",
        help="also run the incremental-session pass: stream each "
        "largest-scale document through a session in deterministic "
        "chunks, recording per-increment latency vs a full relink per "
        "chunk and the final-state parity gate (the record's `session` "
        "block; parity failure exits 1)",
    )
    bench_parser.add_argument(
        "--session-chunks",
        type=int,
        default=None,
        metavar="K",
        help="chunks per streamed document (default 4)",
    )
    bench_parser.add_argument(
        "--session-mode",
        choices=("full", "scoped"),
        default=None,
        help="session solve mode: full gates on byte-identical final "
        "payloads, scoped on pinned F1 drift (default full)",
    )
    bench_parser.add_argument(
        "--session-tolerance",
        type=float,
        default=None,
        metavar="F1",
        help="max absolute F1 drift scoped sessions may show against "
        "one-shot linking (default 0.02)",
    )
    bench_sub = bench_parser.add_subparsers(dest="bench_command")
    bench_compare = bench_sub.add_parser(
        "compare", help="diff two bench JSON files; exit 1 on regression"
    )
    bench_compare.add_argument("baseline", type=Path)
    bench_compare.add_argument("current", type=Path)
    bench_compare.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fail when any stage regresses past this fraction (default 0.25)",
    )
    bench_compare.add_argument(
        "--min-seconds",
        type=float,
        default=0.001,
        metavar="SECONDS",
        help="noise floor: stages faster than this in both records are skipped",
    )
    bench_compare.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but always exit 0 (PR mode)",
    )
    bench_compare.add_argument(
        "--routing-tolerance",
        type=float,
        default=None,
        metavar="F1",
        help="re-judge the current record's routing parity against this "
        "F1 tolerance instead of the recorded one",
    )
    bench_load = bench_sub.add_parser(
        "load",
        help="drive the load generator against a live server and assert "
        "overload SLOs (exit 1 on any 5xx, a 429 without Retry-After, "
        "or a blown --max-p99)",
    )
    bench_load.add_argument(
        "--url",
        required=True,
        metavar="URL",
        help="base URL of a running tenet-repro server",
    )
    bench_load.add_argument(
        "--mode", choices=("closed", "open"), default="closed"
    )
    bench_load.add_argument(
        "--duration", type=float, default=5.0, metavar="SECONDS"
    )
    bench_load.add_argument("--concurrency", type=int, default=4, metavar="N")
    bench_load.add_argument("--qps", type=float, default=20.0, metavar="RPS")
    bench_load.add_argument(
        "--clients",
        type=int,
        default=4,
        metavar="N",
        help="distinct X-Client-Id values to rotate through",
    )
    bench_load.add_argument(
        "--timeout", type=float, default=30.0, metavar="SECONDS"
    )
    bench_load.add_argument(
        "--corpus-scale",
        type=float,
        default=0.1,
        metavar="S",
        help="dataset scale of the generated request corpus (default 0.1)",
    )
    bench_load.add_argument(
        "--max-p99",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fail when the completed-request p99 exceeds this",
    )
    bench_load.add_argument(
        "--allow-5xx",
        action="store_true",
        help="do not fail on 5xx responses (default: any 5xx fails)",
    )
    bench_load.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the load block as JSON",
    )

    snapshot_parser = subparsers.add_parser(
        "snapshot",
        help="manage the versioned artifact store (build/verify/list/gc)",
    )
    snapshot_sub = snapshot_parser.add_subparsers(
        dest="snapshot_command", required=True
    )
    snap_build = snapshot_sub.add_parser(
        "build", help="build all artifacts and publish one snapshot"
    )
    snap_build.add_argument("store", type=Path, help="snapshot store root")
    snap_build.add_argument(
        "--scales",
        default="1.0",
        metavar="S1,S2,...",
        help="dataset scales to persist (default: 1.0)",
    )
    snap_build.add_argument(
        "--force",
        action="store_true",
        help="rebuild even if the spec's snapshot already exists",
    )
    snap_verify = snapshot_sub.add_parser(
        "verify", help="re-hash artifacts against the manifest; exit 1 on mismatch"
    )
    snap_verify.add_argument(
        "path", type=Path, help="snapshot directory, or a store root to verify all"
    )
    snap_list = snapshot_sub.add_parser(
        "list", help="list snapshots in a store, newest first"
    )
    snap_list.add_argument("store", type=Path)
    snap_list.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    snap_gc = snapshot_sub.add_parser(
        "gc", help="remove temp leftovers, broken snapshots, and old snapshots"
    )
    snap_gc.add_argument("store", type=Path)
    snap_gc.add_argument(
        "--keep", type=int, default=2, help="newest snapshots to keep (default 2)"
    )
    snap_gc.add_argument(
        "--dry-run", action="store_true", help="print removals without deleting"
    )

    report_parser = subparsers.add_parser(
        "report",
        help="run the full evaluation and write a markdown report",
    )
    report_parser.add_argument("output", type=Path, help="markdown file")
    report_parser.add_argument("--scale", type=float, default=0.3)
    report_parser.add_argument(
        "--systems",
        default="falcon,qkbfly,kbpearl,earl,mintree,tenet",
    )

    return parser


# ---------------------------------------------------------------------------
# sub-command implementations
# ---------------------------------------------------------------------------

def _cmd_world(args: argparse.Namespace) -> int:
    world = build_synthetic_world(SyntheticKBConfig(seed=args.seed))
    save_dump(world.kb, args.output)
    print(
        f"wrote {args.output}: {world.kb.entity_count} entities, "
        f"{world.kb.predicate_count} predicates, "
        f"{world.kb.triple_count} triples"
    )
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    suite = build_benchmark_suite(seed=args.seed, scale=args.scale)
    args.output_dir.mkdir(parents=True, exist_ok=True)
    save_dump(suite.world.kb, args.output_dir / "kb.json")
    for dataset in suite.datasets():
        path = args.output_dir / f"{dataset.name.lower()}.json"
        save_dataset(dataset, path)
        print(f"wrote {path}: {len(dataset)} documents")
    return 0


def _read_text(args: argparse.Namespace) -> str:
    if args.file is not None:
        return args.file.read_text()
    if args.text is not None:
        return args.text
    return sys.stdin.read()


def _result_payload(result, kb, system: str) -> Dict:
    """Label one LinkingResult's JSON payload with KB surface names."""
    payload = result.to_json()
    payload["system"] = system
    for entry in payload["entities"]:
        entry["label"] = kb.get_entity(entry["concept_id"]).label
    for entry in payload["relations"]:
        entry["label"] = kb.get_predicate(entry["concept_id"]).label
    return payload


def _link_payload(linker, kb, text: str) -> Dict:
    """Link one document and return the labelled JSON payload."""
    return _result_payload(linker.link(text), kb, linker.name)


def _link_stream(linker, kb, text: str, chunks: int, mode: str) -> int:
    """``link --stream``: chunk the document through a session.

    Progress lines (one JSON object per increment: solve kind, mention
    churn, latency) go to stderr so stdout stays exactly one result
    payload, same shape as a one-shot ``link``.
    """
    import random

    from repro.session import SessionConfig, StreamingSession
    from repro.session.workloads import split_text

    parts = split_text(text, chunks, random.Random(0), sentence_aligned=True)
    session = StreamingSession(linker, SessionConfig(mode=mode))
    for part in parts:
        outcome = session.feed(part)
        print(
            json.dumps(
                {
                    "increment": outcome.increment,
                    "chunk_chars": len(part),
                    "solve": outcome.solve,
                    "new_mentions": outcome.new_mentions,
                    "reused_mentions": outcome.reused_mentions,
                    "dirty_mentions": outcome.dirty_mentions,
                    "elapsed_ms": round(1000 * outcome.elapsed_seconds, 3),
                }
            ),
            file=sys.stderr,
        )
    print(json.dumps(_result_payload(session.result, kb, linker.name), indent=1))
    return 0


def _parse_scales(raw: str) -> Tuple[float, ...]:
    """Parse a ``--scales`` comma list; raises ValueError on bad input."""
    scales = tuple(float(s) for s in raw.split(",") if s.strip())
    if not scales:
        raise ValueError(f"no scales in {raw!r}")
    return scales


def _resolve_context(args: argparse.Namespace):
    """``(context, snapshot_info)`` honouring an optional ``--snapshot``.

    With ``--snapshot`` the context is warm-started from the store
    (load-or-build; progress goes to stderr so JSON output stays clean)
    and the snapshot's identity block is returned for surfacing; without
    it the world is built cold and the info is ``None``.
    """
    if getattr(args, "snapshot", None) is not None:
        from repro.snapshot import SnapshotSpec, load_or_build

        warm = load_or_build(
            args.snapshot,
            SnapshotSpec(seed=args.seed),
            echo=lambda message: print(f"# {message}", file=sys.stderr),
        )
        warm.seed_fuzzy_cache()
        return warm.context, warm.info()
    world = build_synthetic_world(SyntheticKBConfig(seed=args.seed))
    return LinkingContext.build(world.kb, world.taxonomy), None


def _cmd_link(args: argparse.Namespace) -> int:
    text = _read_text(args)
    if not text.strip():
        print("error: empty document", file=sys.stderr)
        return 2
    context, _snapshot_info = _resolve_context(args)
    if args.system == "tenet":
        linker = TenetLinker(
            context,
            TenetConfig(
                max_candidates=args.max_candidates,
                cover_mode=args.cover_mode,
            ),
        )
    else:
        linker = SYSTEM_FACTORIES[args.system](
            context, max_candidates=args.max_candidates
        )
    if args.stream:
        if args.system != "tenet":
            print("error: --stream requires --system tenet", file=sys.stderr)
            return 2
        if args.jsonl:
            print("error: --stream and --jsonl are exclusive", file=sys.stderr)
            return 2
        return _link_stream(
            linker, context.kb, text.strip(), args.chunks, args.stream_mode
        )
    if args.jsonl:
        # Batch mode: every non-empty input line is one document, linked
        # over the warm context built above, streamed as one JSON line.
        for line in text.splitlines():
            document = line.strip()
            if not document:
                continue
            print(json.dumps(_link_payload(linker, context.kb, document)))
        return 0
    print(json.dumps(_link_payload(linker, context.kb, text.strip()), indent=1))
    return 0


def _overload_config(args: argparse.Namespace):
    """Map the ``serve`` overload flags onto an :class:`OverloadConfig`."""
    from repro.service import OverloadConfig

    overrides = {}
    if args.max_queue is not None:
        overrides["max_queue_interactive"] = args.max_queue
    if args.batch_max_queue is not None:
        overrides["max_queue_batch"] = args.batch_max_queue
    if args.rate_limit is not None:
        overrides["rate_limit_per_second"] = args.rate_limit
    if args.rate_limit_burst is not None:
        overrides["rate_limit_burst"] = args.rate_limit_burst
    if args.degrade_queue is not None:
        overrides["degraded_enter_queue_depth"] = args.degrade_queue
        overrides["degraded_exit_queue_depth"] = max(0, args.degrade_queue // 4)
    if args.degrade_p95 is not None:
        overrides["degraded_enter_p95_seconds"] = args.degrade_p95
        overrides["degraded_exit_p95_seconds"] = args.degrade_p95 / 2.0
    return replace(OverloadConfig(), **overrides) if overrides else OverloadConfig()


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import LinkerCacheConfig, LinkingService, ServiceConfig
    from repro.service.server import create_server

    if args.sessions and args.cluster:
        # Session state lives in one process; the cluster shards
        # requests across workers, which would scatter a session's
        # increments.
        print("error: --sessions is not supported with --cluster",
              file=sys.stderr)
        return 2
    session_overrides = {}
    if args.sessions:
        session_overrides["sessions_enabled"] = True
    if args.session_max is not None:
        session_overrides["session_max_sessions"] = args.session_max
    if args.session_ttl is not None:
        session_overrides["session_ttl_seconds"] = args.session_ttl
    if args.session_mode is not None:
        session_overrides["session_mode"] = args.session_mode
    service_config = ServiceConfig(
        workers=args.workers,
        default_timeout_seconds=args.timeout,
        cache=LinkerCacheConfig(enabled=not args.no_cache),
        # --trace forces tracing on; otherwise defer to TENET_TRACE.
        trace_enabled=True if args.trace else None,
        overload=_overload_config(args),
        **session_overrides,
    )
    linker_config = TenetConfig(max_candidates=args.max_candidates)
    if args.cluster:
        from repro.service import create_cluster_service

        service = create_cluster_service(
            processes=args.workers,
            snapshot_path=args.snapshot,
            seed=args.seed,
            config=service_config,
            linker_config=linker_config,
            echo=lambda message: print(f"# {message}", file=sys.stderr),
        )
        snapshot_info = service.snapshot_info
    else:
        context, snapshot_info = _resolve_context(args)
        service = LinkingService(
            context,
            service_config,
            linker_config,
            snapshot_info=snapshot_info,
        )
    server = create_server(service, args.host, args.port)
    host, port = server.server_address[:2]
    mode = f"cluster of {args.workers} worker processes" if args.cluster else (
        f"{args.workers} worker threads"
    )
    endpoints = "/link /batch /metrics /debug/traces /healthz"
    if args.sessions:
        endpoints += " /session/{id}/feed"
    print(f"tenet-repro serving on http://{host}:{port}  ({mode}; "
          f"endpoints: {endpoints}; Ctrl-C to stop)")
    if snapshot_info is not None:
        print(
            f"context warm-started from snapshot {snapshot_info['id']} "
            f"({snapshot_info['source']}, "
            f"loaded in {snapshot_info['load_seconds']:.3f}s)"
        )
    service.logger.info(
        "service.started",
        host=host,
        port=port,
        workers=args.workers,
        tracing=service.tracer.enabled,
        snapshot=snapshot_info["id"] if snapshot_info else None,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        BenchConfig,
        BenchSchemaError,
        compare_reports,
        default_report_name,
        format_comparison,
        load_report,
        run_benchmark,
        validate_report,
    )
    from repro.bench.harness import format_report_summary, write_report

    if args.bench_command == "load":
        return _cmd_bench_load(args)

    if args.bench_command == "compare":
        try:
            baseline = load_report(args.baseline)
            current = load_report(args.current)
        except BenchSchemaError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        result = compare_reports(
            baseline,
            current,
            threshold=args.threshold,
            min_seconds=args.min_seconds,
            routing_tolerance=args.routing_tolerance,
        )
        print(format_comparison(result, str(args.baseline), str(args.current)))
        if result.ok or args.warn_only:
            return 0
        return 1

    config = BenchConfig.quick() if args.quick else BenchConfig()
    overrides = {}
    if args.scales is not None:
        try:
            scales = _parse_scales(args.scales)
        except ValueError:
            print(f"error: bad --scales {args.scales!r}", file=sys.stderr)
            return 2
        overrides["scales"] = scales
    if args.repeats is not None:
        overrides["repeats"] = args.repeats
    if args.warmup is not None:
        overrides["warmup"] = args.warmup
    if args.workers is not None:
        overrides["service_workers"] = args.workers
    if args.cluster:
        overrides["cluster"] = True
    if args.no_scalar_baseline:
        overrides["scalar_baseline"] = False
    if args.deadline is not None:
        overrides["deadline_seconds"] = args.deadline
    if args.trace:
        overrides["trace"] = True
    if args.load:
        from repro.bench import LoadConfig

        overrides["load"] = LoadConfig(
            mode=args.load_mode,
            duration_seconds=args.load_duration,
            concurrency=args.load_concurrency,
            qps=args.load_qps,
        )
    if args.no_routing:
        overrides["routing"] = False
    if args.routing_tolerance is not None:
        overrides["routing_tolerance"] = args.routing_tolerance
    if args.session:
        overrides["session"] = True
    if args.session_chunks is not None:
        overrides["session_chunks"] = args.session_chunks
    if args.session_mode is not None:
        overrides["session_mode"] = args.session_mode
    if args.session_tolerance is not None:
        overrides["session_tolerance"] = args.session_tolerance
    if args.label:
        overrides["label"] = args.label
    overrides["seed"] = args.seed
    config = replace(config, **overrides)

    report = run_benchmark(
        config,
        TenetConfig(cover_mode=args.cover_mode),
        echo=lambda line: print(f"# {line}"),
        snapshot_path=args.snapshot,
    )
    problems = validate_report(report)
    if problems:  # pragma: no cover - harness/schema drift guard
        print(f"error: generated record is invalid: {problems}", file=sys.stderr)
        return 2
    output = args.output or Path(default_report_name(report["rev"]))
    write_report(report, output)
    print(format_report_summary(report))
    print(f"wrote {output}")
    comparison = report.get("coherence_comparison")
    if comparison is not None and not comparison.get("parity", True):
        print(
            "error: batched and scalar coherence graphs diverged",
            file=sys.stderr,
        )
        return 1
    routing = report.get("routing")
    if routing is not None and not routing.get("parity", {}).get("ok", True):
        print(
            "error: routed cover mode drifted past the F1 parity tolerance",
            file=sys.stderr,
        )
        return 1
    cluster = report.get("cluster")
    if cluster is not None and not cluster.get("parity", {}).get("ok", True):
        print(
            "error: cluster output diverged from the single-process engine",
            file=sys.stderr,
        )
        return 1
    session = report.get("session")
    if session is not None and not session.get("parity", {}).get("ok", True):
        print(
            "error: session final state drifted from one-shot linking",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench_load(args: argparse.Namespace) -> int:
    """``bench load --url``: drive a live server, assert overload SLOs."""
    from repro.bench import LoadConfig, format_load_summary, run_load

    try:
        load_config = LoadConfig(
            mode=args.mode,
            duration_seconds=args.duration,
            concurrency=args.concurrency,
            qps=args.qps,
            clients=args.clients,
            timeout_seconds=args.timeout,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    suite = build_benchmark_suite(seed=args.seed, scale=args.corpus_scale)
    texts = [
        document.text
        for dataset in suite.datasets()
        for document in dataset.documents
    ]
    print(
        f"# driving {args.url} ({args.mode} loop, {args.duration:g}s, "
        f"{len(texts)} distinct documents) ..."
    )
    block = run_load(args.url, texts, load_config)
    if args.output is not None:
        args.output.write_text(json.dumps(block, indent=1) + "\n")
        print(f"# wrote {args.output}")
    print(format_load_summary(block))

    failures = []
    if block["offered"] == 0 or block["status_counts"].get(
        "transport_error", 0
    ) == block["offered"]:
        failures.append("no request ever reached the server")
    if block["errors_5xx"] and not args.allow_5xx:
        failures.append(f"{block['errors_5xx']} responses were 5xx")
    if block["retry_after_missing"]:
        failures.append(
            f"{block['retry_after_missing']} 429 responses lacked Retry-After"
        )
    latency = block.get("latency") or {}
    p99 = latency.get("p99_seconds")
    if args.max_p99 is not None:
        if p99 is None:
            failures.append("no completed requests, cannot check --max-p99")
        elif p99 > args.max_p99:
            failures.append(
                f"p99 {p99:.3f}s exceeds --max-p99 {args.max_p99:g}s"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK: load SLOs held")
    return 1 if failures else 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    wanted_systems = [s.strip().lower() for s in args.systems.split(",") if s.strip()]
    unknown = [s for s in wanted_systems if s not in SYSTEM_FACTORIES]
    if unknown:
        print(f"error: unknown systems {unknown}", file=sys.stderr)
        return 2
    suite = build_benchmark_suite(seed=args.seed, scale=args.scale)
    context = LinkingContext.build(suite.world.kb, suite.world.taxonomy)
    linkers = [SYSTEM_FACTORIES[s](context) for s in wanted_systems]
    runner = EvaluationRunner(linkers)
    wanted_datasets = {
        d.strip().lower() for d in args.datasets.split(",") if d.strip()
    }
    for dataset in suite.datasets():
        if dataset.name.lower() not in wanted_datasets:
            continue
        scores = runner.evaluate(dataset)
        print(f"=== {dataset.name}")
        for name, system in scores.items():
            entity = system.entity
            line = (
                f"  {name:8s} EL P={entity.precision:.3f} "
                f"R={entity.recall:.3f} F={entity.f1:.3f}"
            )
            if dataset.has_relation_gold and system.relation.predicted:
                relation = system.relation
                line += (
                    f"  RL P={relation.precision:.3f} "
                    f"R={relation.recall:.3f} F={relation.f1:.3f}"
                )
            print(line)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    suite = build_benchmark_suite(seed=args.seed, scale=args.scale)
    for dataset in suite.datasets():
        stats = dataset_statistics(dataset)
        relation_part = (
            f"re/doc={stats.relations_per_document:.2f} "
            f"nlR={100 * stats.non_linkable_relation_fraction:.1f}%"
            if stats.non_linkable_relation_fraction is not None
            else "re=N.A."
        )
        print(
            f"{stats.name:9s} docs={len(dataset):3d} "
            f"w/doc={stats.words_per_document:6.1f} "
            f"n/doc={stats.nouns_per_document:5.2f} "
            f"nlN={100 * stats.non_linkable_noun_fraction:4.1f}% "
            f"{relation_part}"
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis import ErrorAnalyzer
    from repro.eval.report import render_report

    wanted = [s.strip().lower() for s in args.systems.split(",") if s.strip()]
    unknown = [s for s in wanted if s not in SYSTEM_FACTORIES]
    if unknown:
        print(f"error: unknown systems {unknown}", file=sys.stderr)
        return 2
    suite = build_benchmark_suite(seed=args.seed, scale=args.scale)
    context = LinkingContext.build(suite.world.kb, suite.world.taxonomy)
    linkers = [SYSTEM_FACTORIES[s](context) for s in wanted]
    runner = EvaluationRunner(linkers)
    scores = {ds.name: runner.evaluate(ds) for ds in suite.datasets()}
    statistics = [dataset_statistics(ds) for ds in suite.datasets()]
    analyzer = ErrorAnalyzer(context)
    error_reports = [
        analyzer.analyze(linker, suite.news) for linker in linkers
    ]
    from repro.analysis import PerformanceBreakdown

    breakdown = PerformanceBreakdown(context)
    breakdowns = [
        breakdown.by_ambiguity(linker, suite.kore50) for linker in linkers
    ]
    document = render_report(
        scores,
        statistics=statistics,
        error_reports=error_reports,
        breakdowns=breakdowns,
    )
    args.output.write_text(document)
    print(f"wrote {args.output} ({len(document.splitlines())} lines)")
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.snapshot import (
        MANIFEST_NAME,
        SnapshotSpec,
        build_snapshot,
        gc_snapshots,
        list_snapshots,
        verify_snapshot,
    )

    if args.snapshot_command == "build":
        try:
            scales = _parse_scales(args.scales)
        except ValueError:
            print(f"error: bad --scales {args.scales!r}", file=sys.stderr)
            return 2
        spec = SnapshotSpec(seed=args.seed, scales=scales)
        path = build_snapshot(
            spec,
            args.store,
            echo=lambda message: print(f"# {message}"),
            force=args.force,
        )
        print(path)
        return 0

    if args.snapshot_command == "verify":
        # A specific snapshot directory, or a store root (verify all).
        if (args.path / MANIFEST_NAME).is_file():
            targets = [args.path]
        else:
            targets = [
                Path(entry["path"]) for entry in list_snapshots(args.path)
            ]
            if not targets:
                print(f"error: no snapshots under {args.path}", file=sys.stderr)
                return 2
        failed = 0
        for target in targets:
            problems = verify_snapshot(target)
            if problems:
                failed += 1
                print(f"FAIL {target}")
                for problem in problems:
                    print(f"  - {problem}")
            else:
                print(f"ok   {target}")
        return 1 if failed else 0

    if args.snapshot_command == "list":
        entries = list_snapshots(args.store)
        if args.json:
            print(json.dumps(entries, indent=1))
            return 0
        if not entries:
            print(f"no snapshots under {args.store}")
            return 0
        for entry in entries:
            if "error" in entry:
                print(f"{entry['id']}  BROKEN: {entry['error']}")
                continue
            megabytes = entry["bytes"] / 1e6
            print(
                f"{entry['id']}  seed={entry['seed']} "
                f"scales={','.join(f'{s:g}' for s in entry['scales'])} "
                f"artifacts={entry['artifacts']} size={megabytes:.1f}MB "
                f"digest={entry['content_digest'][:12]}"
            )
        return 0

    # gc
    removed = gc_snapshots(args.store, keep=args.keep, dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    for path in removed:
        print(f"{verb} {path}")
    print(f"{verb} {len(removed)} entries (keep={args.keep})")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.datasets.loaders import load_dataset
    from repro.datasets.validation import validate_dataset
    from repro.kb.dump import load_dump

    dataset = load_dataset(args.dataset)
    kb = load_dump(args.kb) if args.kb is not None else None
    result = validate_dataset(dataset, kb)
    for problem in result.problems:
        print(f"[{problem.severity}] {problem.doc_id}: {problem.message}")
    print(
        f"{dataset.name}: {len(result.errors)} errors, "
        f"{len(result.warnings)} warnings"
    )
    return 0 if result.ok else 1


_COMMANDS = {
    "bench": _cmd_bench,
    "world": _cmd_world,
    "datasets": _cmd_datasets,
    "link": _cmd_link,
    "evaluate": _cmd_evaluate,
    "stats": _cmd_stats,
    "serve": _cmd_serve,
    "report": _cmd_report,
    "validate": _cmd_validate,
    "snapshot": _cmd_snapshot,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
