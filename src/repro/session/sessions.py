"""The two session front doors: streaming documents and conversations.

:class:`StreamingSession` models one document arriving in chunks — the
accumulated text is the verbatim concatenation of everything fed, so a
session that consumed a document in K chunks holds exactly the text a
one-shot link would see (the parity gate in the bench harness depends
on this).

:class:`ConversationSession` models a multi-turn dialog — turns are
joined with newlines, coref chains resolve pronouns against earlier
turns' entities, and concepts linked in earlier turns receive a small
candidate-prior boost on later turns (the "context prior" of the
sentence-level joint-embedding line of work), so a returning topic
("the theorem", "he") prefers the reading the conversation already
established.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.deadline import Deadline
from repro.core.linker import TenetLinker
from repro.core.result import LinkingResult
from repro.session.state import SESSION_MODES, IncrementalLinker, IncrementOutcome

SESSION_KINDS = ("stream", "conversation")


class SessionError(RuntimeError):
    """Base class for session lifecycle errors."""


class SessionEvictedError(SessionError):
    """The session was evicted (LRU/TTL/delete) — create a new one."""


class SessionClosedError(SessionError):
    """The session (or the whole service) is shutting down."""


@dataclass(frozen=True)
class SessionConfig:
    """Knobs shared by both session kinds."""

    mode: str = "full"  # "full" (byte-parity) | "scoped" (delta re-solve)
    context_prior_boost: float = 0.08
    # Scoped-mode ambiguity guard: fall back to a full solve when the
    # dirty region covers more than this fraction of all mentions (a
    # scoped re-solve would redo most of the work anyway) or averages
    # more than this many candidates per dirty mention (high ambiguity
    # is where clean mentions' fixed links could steer the region
    # wrong).
    scoped_dirty_fraction: float = 0.6
    scoped_mean_candidates: float = 8.0

    def __post_init__(self) -> None:
        if self.mode not in SESSION_MODES:
            raise ValueError(
                f"mode must be one of {SESSION_MODES}, got {self.mode!r}"
            )
        if not 0.0 <= self.context_prior_boost <= 1.0:
            raise ValueError(
                "context_prior_boost must be within [0, 1], got "
                f"{self.context_prior_boost}"
            )
        if not 0.0 < self.scoped_dirty_fraction <= 1.0:
            raise ValueError(
                "scoped_dirty_fraction must be within (0, 1], got "
                f"{self.scoped_dirty_fraction}"
            )
        if self.scoped_mean_candidates <= 0.0:
            raise ValueError(
                "scoped_mean_candidates must be positive, got "
                f"{self.scoped_mean_candidates}"
            )


class StreamingSession:
    """Incremental linking over one document stream."""

    kind = "stream"

    def __init__(
        self, linker: TenetLinker, config: Optional[SessionConfig] = None
    ) -> None:
        self.config = config or SessionConfig()
        self.state = IncrementalLinker(
            linker,
            mode=self.config.mode,
            scoped_dirty_fraction=self.config.scoped_dirty_fraction,
            scoped_mean_candidates=self.config.scoped_mean_candidates,
        )

    def feed(
        self,
        chunk: str,
        deadline: Optional[Deadline] = None,
        trace=None,
    ) -> IncrementOutcome:
        """Append *chunk* verbatim and re-link the accumulated document."""
        if not chunk.strip():
            raise ValueError("chunk must contain non-whitespace text")
        return self.state.feed(chunk, deadline=deadline, trace=trace)

    @property
    def text(self) -> str:
        return self.state.text

    @property
    def increment(self) -> int:
        return self.state.increment

    @property
    def result(self) -> Optional[LinkingResult]:
        return self.state.result


class ConversationSession:
    """Incremental linking over a multi-turn dialog."""

    kind = "conversation"

    def __init__(
        self, linker: TenetLinker, config: Optional[SessionConfig] = None
    ) -> None:
        self.config = config or SessionConfig()
        self.state = IncrementalLinker(
            linker,
            mode=self.config.mode,
            scoped_dirty_fraction=self.config.scoped_dirty_fraction,
            scoped_mean_candidates=self.config.scoped_mean_candidates,
        )
        # Concepts linked in earlier turns -> how many turns linked them.
        self.seen_concepts: Dict[str, int] = {}

    def turn(
        self,
        utterance: str,
        deadline: Optional[Deadline] = None,
        trace=None,
    ) -> IncrementOutcome:
        """Link one new utterance in the context of all earlier turns."""
        if not utterance.strip():
            raise ValueError("utterance must contain non-whitespace text")
        outcome = self.state.feed(
            utterance,
            separator="\n",
            boost_concepts=set(self.seen_concepts),
            boost=self.config.context_prior_boost,
            deadline=deadline,
            trace=trace,
        )
        for link in outcome.result.links:
            self.seen_concepts[link.concept_id] = (
                self.seen_concepts.get(link.concept_id, 0) + 1
            )
        return outcome

    # The session manager drives both kinds through ``feed``.
    feed = turn

    @property
    def text(self) -> str:
        return self.state.text

    @property
    def increment(self) -> int:
        return self.state.increment

    @property
    def result(self) -> Optional[LinkingResult]:
        return self.state.result
