"""Incremental linking state: the engine room of ``repro.session``.

:class:`IncrementalLinker` keeps one document's linking state alive
across text increments.  Each ``feed(chunk)`` re-extracts the (cheap)
surface structure over the accumulated text, resolves candidates
through a session-local memo keyed exactly like the serving layer's
candidate cache, and then solves in one of two modes:

* ``"full"`` — re-run the one-shot solve (`TenetLinker._link_candidates`)
  over the accumulated document.  This is byte-identical to linking the
  final text in one shot, by construction: same extraction, same
  candidate values (the memo returns exactly what the generator would),
  same solver path.  The session still amortises work through the
  candidate memo and the service-level caches.
* ``"scoped"`` — reuse state across increments.  The coherence graph is
  *accumulated*, not rebuilt: :class:`_DeltaCoherenceGraph` adds only
  the new mentions' nodes and the rectangular (new × all) weight block
  each feed, backed by per-concept similarity vectors cached in
  :class:`_SimilarityBlockCache`.  Only the *dirty region* — new
  mentions, mentions whose candidates or group membership changed,
  members of groups that lost a mention to re-tokenisation, plus their
  one-hop coherence neighbourhood closed over mention groups — is
  re-solved, on the subgraph induced from the accumulator by an
  adjacency walk; clean mentions keep their previous links.  The
  Kruskal scaffold is advanced lazily with
  :func:`repro.core.tree_cover.delta_scaffold` only on the feeds that
  fall back to a full solve: a fallback happens when there is no
  previous state or when the dirty region trips the session ambiguity
  guard (dirty fraction or mean candidates per dirty mention above the
  ``SessionConfig`` thresholds).  Scoped increments never re-rank old
  nodes' neighbour lists and freeze conversation-boost priors at first
  sight, so final states are F1-equivalent to one-shot linking within a
  pinned tolerance rather than byte-identical (see docs/sessions.md).

State is committed only after a solve succeeds: a deadline abort or any
other exception leaves the session exactly as it was before the feed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.candidates import MentionCandidates
from repro.core.canopies import MentionGroup, build_mention_groups
from repro.core.coherence import CandidateNode, CoherenceGraph
from repro.core.deadline import Deadline
from repro.core.disambiguation import disambiguate, disambiguate_pairwise
from repro.core.linker import TenetLinker
from repro.core.result import LinkingResult
from repro.core.tree_cover import (
    build_cover_scaffold,
    delta_scaffold,
    derive_tree_cover_with_scaffold,
)
from repro.graph.weighted_graph import WeightedGraph
from repro.kb.alias_index import CandidateHit
from repro.nlp.pipeline import DocumentExtraction
from repro.nlp.spans import Span
from repro.textnorm import normalize_phrase

SESSION_MODES = ("full", "scoped")


@dataclass
class IncrementOutcome:
    """What one ``feed``/``turn`` returned, plus its bookkeeping."""

    result: LinkingResult
    increment: int  # 1-based index of this increment within the session
    mode: str  # session mode: "full" | "scoped"
    solve: str  # what this increment ran: "initial" | "full" | "scoped"
    new_mentions: int
    reused_mentions: int
    removed_mentions: int
    dirty_mentions: int
    memo_hits: int
    memo_misses: int
    coref_inherited: List[Dict[str, object]]
    elapsed_seconds: float
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    text_length: int = 0

    def mention_counts(self) -> Dict[str, int]:
        return {
            "new": self.new_mentions,
            "reused": self.reused_mentions,
            "removed": self.removed_mentions,
            "dirty": self.dirty_mentions,
        }


@dataclass
class _CommittedState:
    """The per-increment state the next feed diffs against."""

    extraction: DocumentExtraction
    candidates: MentionCandidates
    coherence: CoherenceGraph
    groups: List[MentionGroup]
    result: LinkingResult


class _SimilarityBlockCache:
    """Concept-id-keyed similarity rows reused across increments.

    ``batch_similarity`` computes one ``E @ E.T`` block per document;
    across increments most concept ids repeat, so this cache grows a
    unique-id similarity matrix incrementally — only the cross block
    between *new* ids and everything seen so far is a fresh matrix
    product — and expands it to the per-node layout with one fancy-index
    gather.  Reused entries are bitwise-stable across increments (they
    are never recomputed), but they are *not* bitwise-equal to what a
    fresh one-shot block of a different shape would produce (BLAS
    tiling), which is why scoped mode carries an F1 tolerance instead of
    a byte gate.
    """

    def __init__(self, store) -> None:
        self._store = store
        self._ids: List[str] = []
        self._index: Dict[str, int] = {}
        self._vectors: Optional[np.ndarray] = None
        self._matrix: Optional[np.ndarray] = None
        self.reused_pairs = 0
        self.computed_pairs = 0

    def matrix_for(self, concept_ids: Sequence[str]) -> np.ndarray:
        """Similarity matrix over *concept_ids* (duplicates allowed)."""
        ids = list(concept_ids)
        self._ensure(ids)
        n = len(ids)
        if n == 0:
            return np.zeros((0, 0), dtype=np.float64)
        self.reused_pairs += n * (n - 1) // 2
        rows = np.array([self._index[cid] for cid in ids], dtype=np.int64)
        sims = self._matrix[np.ix_(rows, rows)]
        # Same-id positions are exactly 1.0, matching batch_similarity's
        # a == b shortcut (equal unique-matrix indices <=> equal ids).
        sims[rows[:, None] == rows[None, :]] = 1.0
        return sims

    def block_for(
        self, row_ids: Sequence[str], col_ids: Sequence[str]
    ) -> np.ndarray:
        """Rectangular similarity block rows x cols (duplicates allowed)."""
        self._ensure(list(row_ids) + list(col_ids))
        if not row_ids or not col_ids:
            return np.zeros((len(row_ids), len(col_ids)), dtype=np.float64)
        rows = np.array(
            [self._index[cid] for cid in row_ids], dtype=np.int64
        )
        cols = np.array(
            [self._index[cid] for cid in col_ids], dtype=np.int64
        )
        sims = self._matrix[np.ix_(rows, cols)]
        sims[rows[:, None] == cols[None, :]] = 1.0
        self.reused_pairs += len(rows) * len(cols)
        return sims

    def _ensure(self, ids: Sequence[str]) -> None:
        """Grow the unique-id matrix to cover *ids*."""
        fresh = [
            cid
            for cid in dict.fromkeys(ids)
            if cid not in self._index
        ]
        if fresh:
            vectors, _ = self._store.rows(fresh)
            new_block = vectors.astype(np.float64)
            if self._vectors is None:
                self._vectors = new_block
                self._matrix = np.clip(new_block @ new_block.T, -1.0, 1.0)
            else:
                old = self._matrix.shape[0]
                cross = np.clip(new_block @ self._vectors.T, -1.0, 1.0)
                diag = np.clip(new_block @ new_block.T, -1.0, 1.0)
                grown = np.empty(
                    (old + len(fresh), old + len(fresh)), dtype=np.float64
                )
                grown[:old, :old] = self._matrix
                grown[old:, :old] = cross
                grown[:old, old:] = cross.T
                grown[old:, old:] = diag
                self._matrix = grown
                self._vectors = np.vstack([self._vectors, new_block])
            for cid in fresh:
                self._index[cid] = len(self._ids)
                self._ids.append(cid)
            self.computed_pairs += len(fresh) * len(self._ids)

    @property
    def unique_ids(self) -> int:
        return len(self._ids)


class _DeltaCoherenceGraph:
    """Coherence graph grown candidate-block by candidate-block.

    The fresh build pays an O(n^2) weight matrix plus a Python edge
    loop over the whole document on every call; across increments only
    the *new* mentions' candidate nodes need edges, so this accumulator
    computes one rectangular (new x all) weight block per feed and adds
    each new node's ``max_neighbours`` lightest admissible edges.  The
    edge-weight formulae mirror :func:`build_coherence_graph` exactly;
    what drifts from a fresh build is the kNN sparsification (an old
    node never re-ranks its neighbour list when better partners arrive
    later, though it does gain the edges new nodes pick to it) and, in
    conversations, prior boosts applied after a node was first seen.
    Scoped mode carries an F1 tolerance instead of a byte gate for
    exactly this class of drift.

    ``extend`` is idempotent per span, so a feed aborted after the graph
    grew (deadline hit mid-solve) leaves at worst some not-yet-committed
    nodes in the graph; they are invisible downstream because every
    consumer walks ``candidates_by_mention`` of the *current* feed.
    """

    def __init__(self, sims: _SimilarityBlockCache, config) -> None:
        self._sims = sims
        self._config = config
        self.graph = WeightedGraph()
        self.priors: Dict[CandidateNode, float] = {}
        self._nodes_by_span: Dict[Span, List[CandidateNode]] = {}
        self._nodes: List[CandidateNode] = []
        self._starts: List[int] = []
        self._ends: List[int] = []
        self._sentences: List[int] = []
        self._is_predicate: List[bool] = []
        self._concept_of: List[int] = []
        self._mention_of: List[int] = []
        self._concept_index: Dict[str, int] = {}
        self._mention_index: Dict[Span, int] = {}

    def view(
        self, mention_candidates: Dict[Span, List[CandidateHit]]
    ) -> CoherenceGraph:
        """The accumulated graph scoped to the current feed's mentions."""
        return CoherenceGraph(
            graph=self.graph,
            mentions=list(mention_candidates),
            candidates_by_mention={
                span: self._nodes_by_span[span]
                for span in mention_candidates
            },
            priors=self.priors,
        )

    def extend(
        self, mention_candidates: Dict[Span, List[CandidateHit]]
    ) -> None:
        """Add nodes and edges for the spans not seen before."""
        config = self._config
        floor = config.prior_distance_floor
        curve = config.prior_distance_curve
        new_nodes: List[CandidateNode] = []
        for span, hits in mention_candidates.items():
            if span in self._nodes_by_span:
                continue
            self.graph.add_node(span)
            nodes: List[CandidateNode] = []
            for hit in hits:
                node = CandidateNode(span, hit.concept_id, hit.kind)
                nodes.append(node)
                new_nodes.append(node)
                self.priors[node] = hit.prior
                raw = min(max(1.0 - hit.prior, 0.0), 1.0)
                local = floor + (1.0 - floor) * (raw ** curve)
                self.graph.add_edge(span, node, local)
            self._nodes_by_span[span] = nodes
        if not new_nodes:
            return
        old_count = len(self._nodes)
        for node in new_nodes:
            mention = node.mention
            self._nodes.append(node)
            self._starts.append(mention.token_start)
            self._ends.append(mention.token_end)
            self._sentences.append(mention.sentence_index)
            self._is_predicate.append(node.kind == "predicate")
            self._concept_of.append(
                self._concept_index.setdefault(
                    node.concept_id, len(self._concept_index)
                )
            )
            self._mention_of.append(
                self._mention_index.setdefault(
                    mention, len(self._mention_index)
                )
            )
        total = len(self._nodes)
        if total < 2:
            return
        count = len(new_nodes)
        sims = self._sims.block_for(
            [node.concept_id for node in new_nodes],
            [node.concept_id for node in self._nodes],
        )
        is_pred_all = np.array(self._is_predicate, dtype=bool)
        is_pred_new = is_pred_all[old_count:]
        predicate_pair = is_pred_new[:, None] | is_pred_all[None, :]
        sims = np.where(
            predicate_pair, sims * config.predicate_similarity_scale, sims
        )
        local_all = 1.0 - np.array(
            [self.priors[node] for node in self._nodes], dtype=np.float64
        )
        blend = config.coherence_prior_blend * (
            local_all[old_count:, None] + local_all[None, :]
        )
        weights = np.clip(1.0 - sims + blend, 1e-9, 1.0)

        starts = np.array(self._starts, dtype=np.int64)
        ends = np.array(self._ends, dtype=np.int64)
        sentences = np.array(self._sentences, dtype=np.int64)
        mention_of = np.array(self._mention_of, dtype=np.int64)
        concept_of = np.array(self._concept_of, dtype=np.int64)
        same_mention = (
            mention_of[old_count:, None] == mention_of[None, :]
        )
        overlapping = (starts[old_count:, None] < ends[None, :]) & (
            starts[None, :] < ends[old_count:, None]
        )
        same_sentence = (
            sentences[old_count:, None] == sentences[None, :]
        )
        entity_pair = ~is_pred_new[:, None] & ~is_pred_all[None, :]
        same_concept = (
            concept_of[old_count:, None] == concept_of[None, :]
        )
        allowed = (
            ~same_mention
            & ~overlapping
            & ~same_concept
            & (entity_pair | same_sentence)
        )
        weights = np.where(allowed, weights, np.inf)

        max_neighbours = config.coherence_max_neighbours
        if max_neighbours is None or max_neighbours >= total:
            neighbour_sets = [
                np.nonzero(np.isfinite(weights[i]))[0]
                for i in range(count)
            ]
        else:
            order = np.argsort(weights, axis=1)
            neighbour_sets = [order[i, :max_neighbours] for i in range(count)]
        for i in range(count):
            source = self._nodes[old_count + i]
            row = weights[i]
            for j in neighbour_sets[i].tolist():
                weight = row[j]
                if not np.isfinite(weight):
                    continue
                target = self._nodes[j]
                if target is source:
                    continue
                self.graph.add_edge(source, target, float(weight))


class IncrementalLinker:
    """One document's linking state, advanced chunk by chunk."""

    def __init__(
        self,
        linker: TenetLinker,
        mode: str = "full",
        scoped_dirty_fraction: float = 0.6,
        scoped_mean_candidates: float = 8.0,
    ) -> None:
        if mode not in SESSION_MODES:
            raise ValueError(
                f"session mode must be one of {SESSION_MODES}, got {mode!r}"
            )
        self.linker = linker
        self.mode = mode
        self.scoped_dirty_fraction = scoped_dirty_fraction
        self.scoped_mean_candidates = scoped_mean_candidates
        self.text = ""
        self.increment = 0
        self._memo: Dict[tuple, Tuple[CandidateHit, ...]] = {}
        self._state: Optional[_CommittedState] = None
        self._scaffold = None
        self._boosted_last = False
        self._sims = (
            _SimilarityBlockCache(linker.context.embeddings)
            if mode == "scoped"
            else None
        )
        self._delta = (
            _DeltaCoherenceGraph(self._sims, linker.config)
            if mode == "scoped"
            else None
        )

    # ------------------------------------------------------------------
    @property
    def result(self) -> Optional[LinkingResult]:
        return self._state.result if self._state is not None else None

    @property
    def mention_count(self) -> int:
        if self._state is None:
            return 0
        return len(self._state.candidates.by_mention)

    # ------------------------------------------------------------------
    def feed(
        self,
        chunk: str,
        separator: str = "",
        boost_concepts: Optional[Set[str]] = None,
        boost: float = 0.0,
        deadline: Optional[Deadline] = None,
        trace=None,
    ) -> IncrementOutcome:
        """Advance the session by one text increment.

        Raises whatever the underlying solve raises (notably
        :class:`~repro.core.deadline.DeadlineExceeded`); the session
        state is unchanged on any failure — commit happens last.
        """
        started = time.perf_counter()
        text = self.text + (separator if self.text else "") + chunk
        timings: Dict[str, float] = {}

        if deadline is not None:
            deadline.check("extract")
        stage = time.perf_counter()
        extraction = self.linker.pipeline.extract(text)
        timings["extract"] = time.perf_counter() - stage

        if deadline is not None:
            deadline.check("candidates")
        stage = time.perf_counter()
        candidates, memo_hits, memo_misses = self._candidates(
            extraction, boost_concepts, boost
        )
        timings["candidates"] = time.perf_counter() - stage

        previous = self._state
        prev_mentions = (
            set(previous.candidates.by_mention) if previous is not None else set()
        )
        current_mentions = set(candidates.by_mention)
        new_spans = current_mentions - prev_mentions
        removed_spans = prev_mentions - current_mentions
        reused_spans = current_mentions & prev_mentions

        boosting = bool(boost_concepts) and boost > 0.0

        if self.mode == "full":
            diagnostics = self.linker._link_candidates(
                extraction,
                candidates,
                timings=timings,
                deadline=deadline,
                trace=trace,
            )
            result = diagnostics.result
            coherence = diagnostics.coherence
            groups = diagnostics.groups
            scaffold = None
            solve = "initial" if previous is None else "full"
            dirty_count = len(current_mentions)
        else:
            result, coherence, groups, scaffold, solve, dirty_count = (
                self._scoped_feed(
                    extraction,
                    candidates,
                    previous,
                    new_spans,
                    removed_spans,
                    # Without boosts the memo pins a reused span's
                    # candidate values, so the change scan is skipped;
                    # a boost on either side of the diff re-enables it.
                    boosting or self._boosted_last,
                    timings,
                    deadline,
                    trace,
                )
            )

        coref = self._coref_inherited(extraction, result)
        elapsed = time.perf_counter() - started
        timings["total"] = elapsed
        result.stage_seconds = dict(timings)

        # Commit only now: everything above is side-effect free on the
        # session (memo/similarity caches are value caches).
        self.text = text
        self.increment += 1
        self._boosted_last = boosting
        self._state = _CommittedState(
            extraction, candidates, coherence, groups, result
        )
        if scaffold is not None:
            self._scaffold = scaffold

        return IncrementOutcome(
            result=result,
            increment=self.increment,
            mode=self.mode,
            solve=solve,
            new_mentions=len(new_spans),
            reused_mentions=len(reused_spans),
            removed_mentions=len(removed_spans),
            dirty_mentions=dirty_count,
            memo_hits=memo_hits,
            memo_misses=memo_misses,
            coref_inherited=coref,
            elapsed_seconds=elapsed,
            stage_seconds=dict(timings),
            text_length=len(text),
        )

    # ------------------------------------------------------------------
    # candidates: session memo (+ conversational prior boost)
    # ------------------------------------------------------------------
    def _candidates(
        self,
        extraction: DocumentExtraction,
        boost_concepts: Optional[Set[str]],
        boost: float,
    ) -> Tuple[MentionCandidates, int, int]:
        by_mention: Dict[Span, List[CandidateHit]] = {}
        hits_count = 0
        misses = 0
        generator = self.linker.generator
        for span in extraction.noun_spans:
            key = ("entity", normalize_phrase(span.text), span.mention_type)
            cached = self._memo.get(key)
            if cached is None:
                cached = tuple(generator.entity_candidates(span))
                self._memo[key] = cached
                misses += 1
            else:
                hits_count += 1
            by_mention[span] = self._boosted(cached, boost_concepts, boost)
        for relation in extraction.relations:
            variants = relation.surface_variants or (relation.span.text,)
            key = ("predicate",) + tuple(normalize_phrase(v) for v in variants)
            cached = self._memo.get(key)
            if cached is None:
                cached = tuple(
                    generator.predicate_candidates(
                        relation.span, relation.surface_variants
                    )
                )
                self._memo[key] = cached
                misses += 1
            else:
                hits_count += 1
            by_mention[relation.span] = self._boosted(
                cached, boost_concepts, boost
            )
        return MentionCandidates(by_mention), hits_count, misses

    @staticmethod
    def _boosted(
        hits: Tuple[CandidateHit, ...],
        boost_concepts: Optional[Set[str]],
        boost: float,
    ) -> List[CandidateHit]:
        if not boost_concepts or boost <= 0.0:
            return list(hits)
        out: List[CandidateHit] = []
        changed = False
        for hit in hits:
            if hit.concept_id in boost_concepts:
                out.append(
                    replace(hit, prior=min(1.0, hit.prior + boost))
                )
                changed = True
            else:
                out.append(hit)
        if changed:
            # Stable by descending prior, like the alias index ordering.
            out.sort(key=lambda h: -h.prior)
        return out

    # ------------------------------------------------------------------
    # scoped mode
    # ------------------------------------------------------------------
    def _scoped_feed(
        self,
        extraction: DocumentExtraction,
        candidates: MentionCandidates,
        previous: Optional[_CommittedState],
        new_spans: Set[Span],
        removed_spans: Set[Span],
        scan_candidates: bool,
        timings: Dict[str, float],
        deadline: Optional[Deadline],
        trace,
    ):
        config = self.linker.config
        if not config.use_canopies:
            # Ablation configs bypass the scoped machinery entirely.
            diagnostics = self.linker._link_candidates(
                extraction, candidates, timings=timings,
                deadline=deadline, trace=trace,
            )
            return (
                diagnostics.result,
                diagnostics.coherence,
                diagnostics.groups,
                None,
                "initial" if previous is None else "full",
                len(candidates.by_mention),
            )

        if deadline is not None:
            deadline.check("coherence")
        stage = time.perf_counter()
        # Removed spans (a chunk boundary re-tokenised the tail) leave
        # stale nodes in the accumulator; they are invisible downstream
        # because every consumer — the view, the scaffold edge arrays,
        # the induced subgraph — walks the *current* feed's mentions.
        self._delta.extend(candidates.by_mention)
        coherence = self._delta.view(candidates.by_mention)
        timings["coherence"] = time.perf_counter() - stage
        if trace is not None:
            trace.record(
                "coherence",
                timings["coherence"],
                nodes=coherence.graph.node_count,
                edges=coherence.graph.edge_count,
                mentions=coherence.mention_count,
            )

        if deadline is not None:
            deadline.check("grouping")
        stage = time.perf_counter()
        groups = build_mention_groups(
            extraction.tokens,
            extraction.noun_spans,
            extraction.relation_spans,
            has_candidates=lambda span: bool(candidates.by_mention.get(span)),
        )
        timings["grouping"] = time.perf_counter() - stage
        if trace is not None:
            trace.record("grouping", timings["grouping"], groups=len(groups))

        dirty = self._dirty_region(
            previous, candidates, coherence, groups, new_spans,
            scan_candidates, removed_spans,
        )
        if (
            previous is None
            or not self._scoped_applicable(dirty, candidates, groups)
        ):
            # The scaffold is advanced lazily: scoped increments never
            # touch it, so the delta merge (or initial sort) runs only
            # on the feeds that actually solve over it.  delta_scaffold
            # tolerates a scaffold that is several increments behind —
            # unmatched edges just land in the "added" run.
            scaffold = (
                delta_scaffold(self._scaffold, coherence)
                if self._scaffold is not None
                else build_cover_scaffold(coherence)
            )
            solve = "initial" if previous is None else "full"
            result = self._solve_all(
                extraction, candidates, coherence, groups, scaffold,
                timings, deadline, trace,
            )
            dirty_count = len(candidates.by_mention)
        else:
            scaffold = None
            solve = "scoped"
            result = self._solve_dirty(
                previous, dirty, candidates, coherence, groups,
                timings, deadline, trace,
            )
            dirty_count = len(dirty)
        return result, coherence, groups, scaffold, solve, dirty_count

    def _dirty_region(
        self,
        previous: Optional[_CommittedState],
        candidates: MentionCandidates,
        coherence: CoherenceGraph,
        groups: List[MentionGroup],
        new_spans: Set[Span],
        scan_candidates: bool = True,
        removed_spans: Optional[Set[Span]] = None,
    ) -> Set[Span]:
        """New/changed mentions, closed over groups and one coherence hop."""
        dirty: Set[Span] = set(new_spans)
        if previous is None:
            return set(candidates.by_mention)
        if scan_candidates:
            prev_by_mention = previous.candidates.by_mention
            for span, hits in candidates.by_mention.items():
                old = prev_by_mention.get(span)
                if old is not None and list(old) != list(hits):
                    dirty.add(span)
        # A removed mention (the tail re-tokenised under a mid-sentence
        # chunk boundary) takes its committed link with it; the group it
        # sat in must re-arbitrate, so its surviving members are dirty.
        if removed_spans:
            for group in previous.groups:
                members = group.spans() | set(group.short_mentions)
                if any(span in removed_spans for span in members):
                    dirty.update(members)
        # Group-membership changes: a group whose span set differs from
        # the one its members sat in before must re-arbitrate as a whole.
        prev_group_of: Dict[Span, frozenset] = {}
        for group in previous.groups:
            members = frozenset(group.spans() | set(group.short_mentions))
            for span in members:
                prev_group_of[span] = members
        for group in groups:
            members = frozenset(group.spans() | set(group.short_mentions))
            if any(prev_group_of.get(span) != members for span in members):
                dirty.update(members)
        # One hop of coherence neighbourhood: candidates of dirty
        # mentions pull in the mentions their concept edges touch.
        graph = coherence.graph
        for span in list(dirty):
            for node in coherence.candidates_by_mention.get(span, []):
                for neighbour in graph.neighbours(node):
                    if isinstance(neighbour, CandidateNode):
                        dirty.add(neighbour.mention)
        # Close over groups so every touched group is wholly dirty.
        for group in groups:
            members = group.spans() | set(group.short_mentions)
            if any(span in dirty for span in members):
                dirty.update(members)
        return {span for span in dirty if span in candidates.by_mention}

    def _scoped_applicable(
        self,
        dirty: Set[Span],
        candidates: MentionCandidates,
        groups: List[MentionGroup],
    ) -> bool:
        """False when the dirty region trips the session ambiguity guard.

        Two signals: a dirty region covering most of the document means
        a scoped re-solve would redo nearly all the work anyway (so run
        the honest full solve over the delta scaffold), and a region
        with many candidates per mention is where the global tree cover
        changes answers — re-solving it in isolation against frozen
        clean links risks drift, so it also deserves the full solve.
        """
        if not dirty:
            return True
        total_mentions = len(candidates.by_mention)
        if (
            total_mentions
            and len(dirty) / total_mentions > self.scoped_dirty_fraction
        ):
            return False
        total = sum(len(candidates.by_mention.get(s, ())) for s in dirty)
        return total / len(dirty) <= self.scoped_mean_candidates

    def _solve_all(
        self,
        extraction: DocumentExtraction,
        candidates: MentionCandidates,
        coherence: CoherenceGraph,
        groups: List[MentionGroup],
        scaffold,
        timings: Dict[str, float],
        deadline: Optional[Deadline],
        trace,
    ) -> LinkingResult:
        """Full solve over the delta-built scaffold (scoped mode)."""
        linker = self.linker
        routed_fast = linker._route_fast(coherence, groups)
        if routed_fast:
            timings["tree_cover"] = 0.0
            if trace is not None:
                trace.record("tree_cover", 0.0, cover_edges=0, mode="fast")
            if deadline is not None:
                deadline.check("disambiguation")
            stage = time.perf_counter()
            disambiguation = disambiguate_pairwise(
                coherence,
                groups,
                linker.config.prior_link_threshold,
                deadline=deadline,
            )
        else:
            if deadline is not None:
                deadline.check("tree_cover")
            stage = time.perf_counter()
            cover = derive_tree_cover_with_scaffold(
                coherence,
                scaffold,
                linker.config.tree_weight_bound,
                deadline=deadline,
            )
            timings["tree_cover"] = time.perf_counter() - stage
            if trace is not None:
                trace.record(
                    "tree_cover",
                    timings["tree_cover"],
                    cover_edges=cover.total_edges,
                )
            if deadline is not None:
                deadline.check("disambiguation")
            stage = time.perf_counter()
            disambiguation = disambiguate(
                cover,
                groups,
                linker.config.prior_link_threshold,
                extra_edges=linker._shared_edges(coherence, cover.bound),
                deadline=deadline,
            )
        timings["disambiguation"] = time.perf_counter() - stage
        result = linker._to_result(disambiguation, candidates)
        result.cover_mode = "fast" if routed_fast else "exact"
        if trace is not None:
            trace.record(
                "disambiguation",
                timings["disambiguation"],
                entity_links=len(result.entity_links),
                relation_links=len(result.relation_links),
                non_linkable=len(result.non_linkable),
                mode=result.cover_mode,
            )
        return result

    @staticmethod
    def _induced_subgraph(
        coherence: CoherenceGraph, dirty: Set[Span]
    ) -> CoherenceGraph:
        """The coherence graph restricted to the dirty mentions.

        Rebuilding a sub-coherence graph from candidate hits would redo
        the edge construction the full build just did; slicing the
        committed graph instead is linear in its edge count and keeps
        the sub-region's edge weights bitwise-equal to the full graph's
        (including the ``max_neighbours`` pruning decisions made under
        full-document context).
        """
        graph = WeightedGraph()
        mentions = [m for m in coherence.mentions if m in dirty]
        candidates_by_mention: Dict[Span, List[CandidateNode]] = {}
        priors: Dict[CandidateNode, float] = {}
        full = coherence.graph
        # One adjacency walk per dirty candidate node (edges are emitted
        # at their first-reached endpoint, like WeightedGraph.edges());
        # cost is the dirty region's degree sum, not the full edge count.
        done: Set[CandidateNode] = set()
        for mention in mentions:
            graph.add_node(mention)
            nodes = coherence.candidates_by_mention.get(mention, [])
            candidates_by_mention[mention] = list(nodes)
            for node in nodes:
                graph.add_node(node)
                priors[node] = coherence.priors[node]
                for neighbour, weight in full.neighbours(node).items():
                    if neighbour is mention or neighbour == mention:
                        graph.add_edge(mention, node, weight)
                    elif (
                        isinstance(neighbour, CandidateNode)
                        and neighbour not in done
                        and neighbour.mention in dirty
                    ):
                        graph.add_edge(node, neighbour, weight)
                done.add(node)
        return CoherenceGraph(
            graph=graph,
            mentions=mentions,
            candidates_by_mention=candidates_by_mention,
            priors=priors,
        )

    def _solve_dirty(
        self,
        previous: _CommittedState,
        dirty: Set[Span],
        candidates: MentionCandidates,
        coherence: CoherenceGraph,
        groups: List[MentionGroup],
        timings: Dict[str, float],
        deadline: Optional[Deadline],
        trace,
    ) -> LinkingResult:
        """Re-solve only the dirty region; clean mentions keep their links."""
        linker = self.linker
        config = linker.config
        sub_by_mention = {
            span: hits
            for span, hits in candidates.by_mention.items()
            if span in dirty
        }
        sub_groups = [
            group
            for group in groups
            if any(span in dirty for span in group.spans())
        ]

        if sub_by_mention:
            sub_coherence = self._induced_subgraph(coherence, dirty)
            if deadline is not None:
                deadline.check("tree_cover")
            stage = time.perf_counter()
            sub_scaffold = build_cover_scaffold(sub_coherence)
            cover = derive_tree_cover_with_scaffold(
                sub_coherence,
                sub_scaffold,
                config.tree_weight_bound,
                deadline=deadline,
            )
            timings["tree_cover"] = time.perf_counter() - stage
            if trace is not None:
                trace.record(
                    "tree_cover",
                    timings["tree_cover"],
                    cover_edges=cover.total_edges,
                    mode="scoped",
                )
            if deadline is not None:
                deadline.check("disambiguation")
            stage = time.perf_counter()
            disambiguation = disambiguate(
                cover,
                sub_groups,
                config.prior_link_threshold,
                extra_edges=linker._shared_edges(sub_coherence, cover.bound),
                deadline=deadline,
            )
            timings["disambiguation"] = time.perf_counter() - stage
            sub_result = linker._to_result(
                disambiguation, MentionCandidates(sub_by_mention)
            )
        else:
            timings["tree_cover"] = 0.0
            timings["disambiguation"] = 0.0
            sub_result = LinkingResult()

        current = set(candidates.by_mention)

        def keep(span: Span) -> bool:
            return span in current and span not in dirty

        def order(link) -> Tuple[int, int]:
            return (link.span.token_start, link.span.token_end)

        previous_result = previous.result
        result = LinkingResult(
            entity_links=sorted(
                [l for l in previous_result.entity_links if keep(l.span)]
                + sub_result.entity_links,
                key=order,
            ),
            relation_links=sorted(
                [l for l in previous_result.relation_links if keep(l.span)]
                + sub_result.relation_links,
                key=order,
            ),
            non_linkable=sorted(
                [s for s in previous_result.non_linkable if keep(s)]
                + sub_result.non_linkable,
                key=lambda s: (s.token_start, s.token_end),
            ),
        )
        result.cover_mode = "exact"
        if trace is not None:
            trace.record(
                "disambiguation",
                timings["disambiguation"],
                entity_links=len(result.entity_links),
                relation_links=len(result.relation_links),
                non_linkable=len(result.non_linkable),
                mode="scoped",
            )
        return result

    # ------------------------------------------------------------------
    # coref threading
    # ------------------------------------------------------------------
    @staticmethod
    def _coref_inherited(
        extraction: DocumentExtraction, result: LinkingResult
    ) -> List[Dict[str, object]]:
        """Anaphoric mentions inheriting a resolved concept.

        ``repro.nlp.coref`` maps pronoun token indices to antecedent
        nominal regions; any entity link whose span overlaps the
        antecedent region hands its concept to the pronoun.
        """
        inherited: List[Dict[str, object]] = []
        if not extraction.pronoun_antecedents:
            return inherited
        for index in sorted(extraction.pronoun_antecedents):
            antecedent = extraction.pronoun_antecedents[index]
            for link in result.entity_links:
                span = link.span
                if (
                    span.token_start < antecedent.token_end
                    and antecedent.token_start < span.token_end
                ):
                    inherited.append(
                        {
                            "pronoun_index": index,
                            "pronoun": extraction.tokens[index].text,
                            "antecedent": antecedent.text,
                            "concept_id": link.concept_id,
                        }
                    )
                    break
        return inherited
