"""Deterministic session workloads: stream chunkings + conversation scripts.

Synthetic but gold-bearing workloads for the two session front doors,
in the repo's frozen-dataclass gold-set idiom: every entry is a frozen
record, generation is a deterministic index loop over a seeded RNG, and
the whole set serialises to one JSON payload that the snapshot store
persists as a versioned artifact (``sessions/<scale>/workloads.json``).

* **Stream workloads** cut existing scale documents into K chunks at
  whitespace boundaries chosen by the seeded RNG.  The chunks
  concatenate back to the document byte-for-byte, so the one-shot
  linking of the document is the parity reference for feeding the
  chunks through a :class:`~repro.session.sessions.StreamingSession`.
  The document's gold mentions ride along for F1 scoring.
* **Conversation scripts** are short dialogs synthesised from a
  document's linkable gold entities: an opening turn quoting the
  document, a pronoun turn exercising anaphora (the pronoun's concept
  must be inherited from the previous turn's entity via coref), and a
  topic re-mention turn repeating an earlier entity (exercising the
  context-prior boost).  Each turn lists the concept ids it expects in
  the session's accumulated linking.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets.schema import AnnotatedDocument, GoldMention
from repro.nlp.spans import SpanKind

# Version of the generated payload; folded into the snapshot content
# key so a generator change produces a different snapshot id.
SESSION_WORKLOAD_FORMAT_VERSION = 2


@dataclass(frozen=True)
class StreamWorkload:
    """One document as a deterministic K-chunk stream, with its gold."""

    workload_id: str
    doc_id: str
    chunks: Tuple[str, ...]
    gold: Tuple[GoldMention, ...]

    @property
    def text(self) -> str:
        return "".join(self.chunks)


@dataclass(frozen=True)
class ConversationTurn:
    """One utterance plus the concepts it expects in the session state."""

    utterance: str
    expected_concepts: Tuple[str, ...]
    exercises: str  # "opening" | "anaphora" | "re-mention"


@dataclass(frozen=True)
class ConversationScript:
    """A scripted multi-turn dialog with per-turn expectations."""

    script_id: str
    turns: Tuple[ConversationTurn, ...]


# ---------------------------------------------------------------------------
# generators
# ---------------------------------------------------------------------------

def stream_chunkings(
    documents: Sequence[AnnotatedDocument],
    chunks: int = 3,
    seed: int = 7,
    limit: Optional[int] = 8,
    sentence_aligned: bool = True,
) -> List[StreamWorkload]:
    """Cut *documents* into deterministic K-chunk streams."""
    if chunks < 2:
        raise ValueError("chunks must be >= 2")
    workloads: List[StreamWorkload] = []
    for index, document in enumerate(documents):
        if limit is not None and len(workloads) >= limit:
            break
        rng = random.Random(seed * 1000 + index)
        parts = split_text(
            document.text, chunks, rng, sentence_aligned=sentence_aligned
        )
        if len(parts) < 2:
            continue
        workloads.append(
            StreamWorkload(
                workload_id=f"stream-{index:03d}",
                doc_id=document.doc_id,
                chunks=tuple(parts),
                gold=tuple(document.gold),
            )
        )
    return workloads


def split_text(
    text: str,
    chunks: int,
    rng: random.Random,
    sentence_aligned: bool = False,
) -> List[str]:
    """Split *text* into up to *chunks* pieces at token boundaries.

    The pieces concatenate back to *text* exactly; boundaries are drawn
    without replacement from eligible cut positions, so every chunk is
    non-empty and no byte is lost.  With ``sentence_aligned`` the cuts
    land just after a ``". "`` sentence break (falling back to word
    boundaries when the text has too few sentences) — sentence-aligned
    chunks keep earlier increments' tokenisation stable, which is what
    lets scoped sessions re-solve only the dirty region instead of
    falling back to a full solve.  Without it, cuts land just after any
    space, including mid-sentence.
    """
    boundaries: List[int] = []
    if sentence_aligned:
        boundaries = [
            i + 2
            for i in range(len(text) - 2)
            if text[i : i + 2] == ". "
        ]
    if not boundaries:
        boundaries = [
            i + 1 for i, ch in enumerate(text[:-1]) if ch == " "
        ]
    if not boundaries or chunks < 2:
        return [text]
    cuts = sorted(rng.sample(boundaries, min(chunks - 1, len(boundaries))))
    parts: List[str] = []
    previous = 0
    for cut in cuts:
        parts.append(text[previous:cut])
        previous = cut
    parts.append(text[previous:])
    return parts


def _is_person_surface(surface: str) -> bool:
    tokens = surface.split()
    return 1 <= len(tokens) <= 3 and all(
        token[0].isupper() and token.isalpha() for token in tokens
    )


def _linkable_entities(document: AnnotatedDocument) -> List[GoldMention]:
    return [
        gold
        for gold in document.gold
        if gold.kind is SpanKind.NOUN and gold.is_linkable
    ]


def conversation_scripts(
    documents: Sequence[AnnotatedDocument],
    seed: int = 7,
    limit: Optional[int] = 6,
) -> List[ConversationScript]:
    """Synthesise dialog scripts with anaphora and topic re-mention."""
    scripts: List[ConversationScript] = []
    for index, document in enumerate(documents):
        if limit is not None and len(scripts) >= limit:
            break
        entities = _linkable_entities(document)
        persons = [g for g in entities if _is_person_surface(g.surface)]
        if not persons or len(entities) < 2:
            continue
        rng = random.Random(seed * 2000 + index)
        anchor = persons[0]
        others = [g for g in entities if g.concept_id != anchor.concept_id]
        if not others:
            continue
        other = others[rng.randrange(len(others))]
        # Opening turn: the document prefix up to the first sentence end
        # past both mentions, so the anchor is on the table.
        stop = max(anchor.char_end, other.char_end)
        period = document.text.find(". ", stop)
        opening = (
            document.text[: period + 1]
            if period != -1
            else document.text
        )
        turns = (
            ConversationTurn(
                utterance=opening,
                expected_concepts=tuple(
                    sorted(
                        {
                            g.concept_id
                            for g in entities
                            if g.char_end <= len(opening) and g.concept_id
                        }
                    )
                ),
                exercises="opening",
            ),
            ConversationTurn(
                utterance=f"He discussed {other.surface} at length.",
                expected_concepts=(other.concept_id,),
                exercises="anaphora",
            ),
            ConversationTurn(
                utterance=f"Later {anchor.surface} returned to the topic.",
                expected_concepts=(anchor.concept_id,),
                exercises="re-mention",
            ),
        )
        scripts.append(
            ConversationScript(
                script_id=f"conversation-{index:03d}", turns=turns
            )
        )
    return scripts


# ---------------------------------------------------------------------------
# payload (snapshot artifact) serialisation
# ---------------------------------------------------------------------------

def build_session_workloads(
    documents: Sequence[AnnotatedDocument],
    seed: int = 7,
    chunks: int = 3,
    stream_limit: Optional[int] = 8,
    script_limit: Optional[int] = 6,
) -> Dict[str, object]:
    """The JSON payload persisted by the snapshot store."""
    streams = stream_chunkings(
        documents, chunks=chunks, seed=seed, limit=stream_limit
    )
    scripts = conversation_scripts(documents, seed=seed, limit=script_limit)
    return {
        "format_version": SESSION_WORKLOAD_FORMAT_VERSION,
        "seed": seed,
        "chunks": chunks,
        "sentence_aligned": True,
        "streams": [
            {
                "workload_id": w.workload_id,
                "doc_id": w.doc_id,
                "chunks": list(w.chunks),
                "gold": [
                    {
                        "surface": g.surface,
                        "char_start": g.char_start,
                        "char_end": g.char_end,
                        "kind": g.kind.name,
                        "concept_id": g.concept_id,
                    }
                    for g in w.gold
                ],
            }
            for w in streams
        ],
        "conversations": [
            {
                "script_id": s.script_id,
                "turns": [
                    {
                        "utterance": t.utterance,
                        "expected_concepts": list(t.expected_concepts),
                        "exercises": t.exercises,
                    }
                    for t in s.turns
                ],
            }
            for s in scripts
        ],
    }


def workloads_from_payload(
    payload: Dict[str, object],
) -> Tuple[List[StreamWorkload], List[ConversationScript]]:
    """Rehydrate the frozen records from a persisted payload."""
    version = payload.get("format_version")
    if version != SESSION_WORKLOAD_FORMAT_VERSION:
        raise ValueError(
            f"unsupported session workload format {version!r} "
            f"(expected {SESSION_WORKLOAD_FORMAT_VERSION})"
        )
    streams = [
        StreamWorkload(
            workload_id=entry["workload_id"],
            doc_id=entry["doc_id"],
            chunks=tuple(entry["chunks"]),
            gold=tuple(
                GoldMention(
                    surface=g["surface"],
                    char_start=g["char_start"],
                    char_end=g["char_end"],
                    kind=SpanKind[g["kind"]],
                    concept_id=g["concept_id"],
                )
                for g in entry["gold"]
            ),
        )
        for entry in payload.get("streams", [])
    ]
    scripts = [
        ConversationScript(
            script_id=entry["script_id"],
            turns=tuple(
                ConversationTurn(
                    utterance=t["utterance"],
                    expected_concepts=tuple(t["expected_concepts"]),
                    exercises=t["exercises"],
                )
                for t in entry["turns"]
            ),
        )
        for entry in payload.get("conversations", [])
    ]
    return streams, scripts
