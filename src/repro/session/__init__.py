"""Stateful incremental linking: streaming and conversational sessions.

Public surface of the ``repro.session`` subsystem:

* :class:`StreamingSession` / :class:`ConversationSession` — the two
  front doors (``feed(chunk)`` over a document stream, ``turn(utterance)``
  over a dialog);
* :class:`IncrementalLinker` / :class:`IncrementOutcome` — the shared
  per-document state machine and its per-increment report;
* :class:`SessionManager` — the serving layer's LRU+TTL session table;
* :class:`SessionConfig` and the typed lifecycle errors;
* :mod:`repro.session.workloads` — deterministic stream/conversation
  workload generators persisted as snapshot artifacts.

See docs/sessions.md for the state model and parity guarantees.
"""

from repro.session.manager import SessionManager, validate_session_id
from repro.session.sessions import (
    SESSION_KINDS,
    ConversationSession,
    SessionClosedError,
    SessionConfig,
    SessionError,
    SessionEvictedError,
    StreamingSession,
)
from repro.session.state import (
    SESSION_MODES,
    IncrementalLinker,
    IncrementOutcome,
)

__all__ = [
    "SESSION_KINDS",
    "SESSION_MODES",
    "ConversationSession",
    "IncrementalLinker",
    "IncrementOutcome",
    "SessionClosedError",
    "SessionConfig",
    "SessionError",
    "SessionEvictedError",
    "SessionManager",
    "StreamingSession",
    "validate_session_id",
]
