"""Session registry: LRU + TTL eviction with per-session serialization.

The manager owns the mapping ``session_id -> live session`` for the
serving layer.  Locking is two-level:

* a *registry lock* guards the id table — resolve/create, LRU/TTL
  eviction and close all run under it, and none of them ever waits for
  a linking solve;
* a *per-session lock* serializes feeds to one session — concurrent
  feeds queue behind each other instead of interleaving solver state.

Eviction never takes the session lock: it flips the entry's ``evicted``
flag and drops the table entry.  A feeder that was already queued on
the session lock re-checks the flag once it acquires it and surfaces a
clean :class:`~repro.session.sessions.SessionEvictedError` — eviction
mid-feed is a typed error, never a hang.  ``close()`` does the same
with ``closed`` so in-flight feeds drain into
:class:`~repro.session.sessions.SessionClosedError` (the HTTP layer's
503 envelope).
"""

from __future__ import annotations

import re
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.session.sessions import (
    SESSION_KINDS,
    SessionClosedError,
    SessionError,
    SessionEvictedError,
)
from repro.session.state import IncrementOutcome

_SESSION_ID = re.compile(r"^[A-Za-z0-9._-]{1,128}$")


def validate_session_id(session_id: str) -> str:
    if not isinstance(session_id, str) or not _SESSION_ID.match(session_id):
        raise SessionError(
            "session id must be 1-128 characters of [A-Za-z0-9._-]"
        )
    return session_id


class _Entry:
    __slots__ = (
        "session", "kind", "lock", "created_at", "last_used",
        "evicted", "closed",
    )

    def __init__(self, session, kind: str, now: float) -> None:
        self.session = session
        self.kind = kind
        self.lock = threading.Lock()
        self.created_at = now
        self.last_used = now
        self.evicted: Optional[str] = None  # eviction reason, once evicted
        self.closed = False


class SessionManager:
    """LRU/TTL-bounded table of live sessions."""

    def __init__(
        self,
        factory: Callable[[str], object],
        max_sessions: int = 64,
        ttl_seconds: float = 600.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        self._factory = factory
        self.max_sessions = max_sessions
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._closed = False
        self.created = 0
        self.evicted_lru = 0
        self.evicted_ttl = 0
        self.deleted = 0

    # ------------------------------------------------------------------
    def feed(
        self,
        session_id: str,
        chunk: str,
        kind: str = "stream",
        deadline=None,
        trace=None,
    ) -> Tuple[IncrementOutcome, bool]:
        """Feed one increment; returns ``(outcome, created)``.

        Creates the session on first use.  Raises
        :class:`SessionEvictedError` / :class:`SessionClosedError` as
        typed lifecycle errors, :class:`SessionError` for id/kind
        misuse, and propagates solver errors (deadline aborts) with the
        session state unchanged.
        """
        validate_session_id(session_id)
        if kind not in SESSION_KINDS:
            raise SessionError(
                f"session kind must be one of {SESSION_KINDS}, got {kind!r}"
            )
        created = False
        with self._lock:
            if self._closed:
                raise SessionClosedError("session manager is closed")
            self._sweep_locked()
            entry = self._entries.get(session_id)
            if entry is None:
                entry = _Entry(self._factory(kind), kind, self._clock())
                self._entries[session_id] = entry
                self.created += 1
                created = True
                self._evict_over_capacity_locked(keep=session_id)
            elif entry.kind != kind:
                raise SessionError(
                    f"session {session_id!r} is a {entry.kind!r} session, "
                    f"not {kind!r}"
                )
            self._entries.move_to_end(session_id)
            entry.last_used = self._clock()
        with entry.lock:
            # Re-check after acquiring: an LRU/TTL sweep or close may
            # have run while this feed queued behind another.
            if entry.evicted is not None:
                raise SessionEvictedError(
                    f"session {session_id!r} was evicted ({entry.evicted})"
                )
            if entry.closed or self._closed:
                raise SessionClosedError("session manager is closed")
            outcome = entry.session.feed(chunk, deadline=deadline, trace=trace)
            entry.last_used = self._clock()
            return outcome, created

    # ------------------------------------------------------------------
    def get(self, session_id: str) -> Optional[Dict[str, object]]:
        with self._lock:
            self._sweep_locked()
            entry = self._entries.get(session_id)
            if entry is None:
                return None
            now = self._clock()
            return {
                "session_id": session_id,
                "kind": entry.kind,
                "increment": entry.session.increment,
                "text_length": len(entry.session.text),
                "mode": entry.session.config.mode,
                "idle_seconds": max(0.0, now - entry.last_used),
                "age_seconds": max(0.0, now - entry.created_at),
            }

    def delete(self, session_id: str) -> bool:
        with self._lock:
            entry = self._entries.pop(session_id, None)
            if entry is None:
                return False
            entry.evicted = "deleted"
            self.deleted += 1
            return True

    def close(self) -> int:
        """Drain: mark everything closed; in-flight feeds get 503s."""
        with self._lock:
            self._closed = True
            drained = len(self._entries)
            for entry in self._entries.values():
                entry.closed = True
            self._entries.clear()
            return drained

    # ------------------------------------------------------------------
    def active_count(self) -> int:
        with self._lock:
            return len(self._entries)

    def session_ids(self) -> List[str]:
        with self._lock:
            return list(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "active": len(self._entries),
                "created": self.created,
                "evicted_lru": self.evicted_lru,
                "evicted_ttl": self.evicted_ttl,
                "deleted": self.deleted,
                "max_sessions": self.max_sessions,
            }

    # ------------------------------------------------------------------
    def _sweep_locked(self) -> None:
        if not self._entries:
            return
        horizon = self._clock() - self.ttl_seconds
        expired = [
            sid
            for sid, entry in self._entries.items()
            if entry.last_used < horizon
        ]
        for sid in expired:
            entry = self._entries.pop(sid)
            entry.evicted = "ttl"
            self.evicted_ttl += 1

    def _evict_over_capacity_locked(self, keep: str) -> None:
        while len(self._entries) > self.max_sessions:
            for sid in self._entries:
                if sid != keep:
                    entry = self._entries.pop(sid)
                    entry.evicted = "lru"
                    self.evicted_lru += 1
                    break
            else:  # pragma: no cover - keep is the only entry
                break
