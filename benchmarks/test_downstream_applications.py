"""Downstream value of joint linking (the paper's Sec. 1 motivation).

The paper motivates TENET through two applications: question answering
(Falcon/EARL) and KB population (QKBfly/KBPearl).  These experiments
measure that value end to end:

* **boolean QA** — yes/no questions about single facts whose subject
  surface is deliberately ambiguous; resolving it requires coherence
  with the object.  Accuracy with a TENET-backed answerer vs. a
  prior-only (Falcon-backed) one.
* **KB population** — fact extraction from the News corpus, scored
  against the gold facts the documents assert.
"""

from conftest import emit

from repro.baselines import FalconLinker
from repro.core.linker import TenetLinker
from repro.population import KBPopulator
from repro.population.goldfacts import gold_facts
from repro.qa import KBQuestionAnswerer, QuestionGenerator


def test_downstream_boolean_qa(bench_suite, bench_context, benchmark):
    generator = QuestionGenerator(bench_suite.world, seed=5)
    questions = generator.boolean_questions(80)

    def run():
        scores = {}
        for name, linker in (
            ("TENET", TenetLinker(bench_context)),
            ("Falcon", FalconLinker(bench_context)),
        ):
            answerer = KBQuestionAnswerer(bench_context, linker)
            right = wrong = unanswered = 0
            for item in questions:
                verdict = answerer.verify(item.question)
                if verdict is None:
                    unanswered += 1
                elif verdict == item.answer:
                    right += 1
                else:
                    wrong += 1
            scores[name] = (right / len(questions), right, wrong, unanswered)
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"{len(questions)} boolean questions "
        f"({sum(q.ambiguous_subject for q in questions)} with ambiguous subjects)"
    ]
    for name, (accuracy, right, wrong, unanswered) in scores.items():
        lines.append(
            f"{name:8s} accuracy={accuracy:.3f} "
            f"(right={right}, wrong={wrong}, unanswered={unanswered})"
        )
    emit("downstream_boolean_qa", lines)

    assert scores["TENET"][0] > scores["Falcon"][0] + 0.1
    assert scores["TENET"][0] > 0.75


def test_downstream_wh_qa(bench_suite, bench_context, benchmark):
    generator = QuestionGenerator(bench_suite.world, seed=6)
    questions = generator.wh_questions(40)

    def run():
        answerer = KBQuestionAnswerer(bench_context, TenetLinker(bench_context))
        exact = overlap = 0
        for item in questions:
            answer = answerer.answer(item.question)
            if tuple(answer.entity_ids) == item.expected_ids:
                exact += 1
            elif set(answer.entity_ids) & set(item.expected_ids):
                overlap += 1
        return exact, overlap

    exact, overlap = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"{len(questions)} wh-questions",
        f"exact reference-set matches: {exact}",
        f"partial overlaps: {overlap}",
    ]
    emit("downstream_wh_qa", lines)

    assert exact / len(questions) > 0.6


def test_downstream_population(bench_suite, bench_context, benchmark):
    documents = bench_suite.news.documents

    def run():
        populator = KBPopulator(bench_context)
        true_extractions = predicted = 0
        recalled = gold_total = 0
        for document in documents:
            reference = gold_facts(document)
            gold_total += len(reference)
            result = populator.populate(document.text)
            extracted = {
                t.as_tuple()
                for t in result.new_facts + result.confirmed_facts
                # only fully-grounded facts are scoreable
                if not t.subject.startswith("NEW")
                and not t.obj.startswith("NEW")
            }
            predicted += len(extracted)
            # precision against KB truth (covers pronoun-subject facts
            # that the sentence-local gold reconstruction skips)
            true_extractions += sum(
                1 for f in extracted if bench_context.kb.has_fact(*f)
            )
            recalled += len(extracted & reference)
        return true_extractions, predicted, recalled, gold_total

    true_extractions, predicted, recalled, gold_total = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    precision = true_extractions / predicted if predicted else 0.0
    recall = recalled / gold_total if gold_total else 0.0
    lines = [
        f"gold facts asserted by News:      {gold_total}",
        f"extracted (grounded) facts:       {predicted}",
        f"  ... true in the KB:             {true_extractions}  (P={precision:.3f})",
        f"  ... recovering sentence gold:   {recalled}  (R={recall:.3f})",
    ]
    emit("downstream_population", lines)

    assert precision > 0.7
    assert recall > 0.6
