"""Figure 6(a): mention detection F1 per system and dataset.

Paper shape: all systems do well on the short-text dataset (KORE50);
TENET leads on the long-text datasets thanks to the integration of
canopy selection with disambiguation.
"""

from conftest import SYSTEM_ORDER, emit

from repro.eval.runner import EvaluationRunner


def test_fig6a_mention_detection(bench_suite, bench_linkers, benchmark):
    runner = EvaluationRunner([bench_linkers[n] for n in SYSTEM_ORDER])

    def run():
        return {ds.name: runner.evaluate(ds) for ds in bench_suite.datasets()}

    scores = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'System':10s} " + " ".join(f"{d:>9s}" for d in scores)]
    for system in SYSTEM_ORDER:
        row = f"{system:10s} "
        row += " ".join(
            f"{scores[d][system].mention_detection.f1:9.3f}" for d in scores
        )
        lines.append(row)
    emit("fig6a_mention_detection", lines)

    for dataset in ("News", "T-REx42", "MSNBC19"):
        by_system = scores[dataset]
        best = max(s.mention_detection.f1 for s in by_system.values())
        assert by_system["TENET"].mention_detection.f1 >= best - 0.005, dataset
    # short text: everyone is decent
    for system in SYSTEM_ORDER:
        assert scores["KORE50"][system].mention_detection.f1 > 0.7, system
