"""Figure 4: sparsity of *entities* per document.

For distance thresholds 0.0..0.9, the density and average degree of the
per-document gold entity graphs are averaged per dataset.  Paper claim:
coherence is sparse — e.g. on MSNBC19 (>22 entities/document) each
entity connects to only a handful of others even at threshold 0.7.
"""

from conftest import emit

from repro.embeddings.similarity import SimilarityIndex
from repro.eval.sparsity import sparsity_curve


def test_fig4_entity_sparsity(bench_suite, bench_context, benchmark):
    similarity = SimilarityIndex(bench_context.embeddings)

    def run():
        return {
            ds.name: sparsity_curve(ds, similarity, entities_only=True)
            for ds in bench_suite.datasets()
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["(a) density of entities per document"]
    thresholds = [p.threshold for p in next(iter(curves.values()))]
    lines.append("dist   " + "  ".join(f"{t:.1f}" for t in thresholds))
    for name, curve in curves.items():
        lines.append(
            f"{name:8s}" + " ".join(f"{p.density:.2f}" for p in curve)
        )
    lines.append("")
    lines.append("(b) average degree of entities per document")
    for name, curve in curves.items():
        lines.append(
            f"{name:8s}" + " ".join(f"{p.average_degree:4.1f}" for p in curve)
        )
    emit("fig4_entity_sparsity", lines)

    for name, curve in curves.items():
        densities = [p.density for p in curve]
        assert densities == sorted(densities), name  # monotone
        at_half = next(p for p in curve if p.threshold == 0.5)
        assert at_half.density < 0.6, name  # sparse coherence claim
    # MSNBC19 (most entities/doc): low average degree at moderate radius
    msnbc_07 = next(
        p for p in curves["MSNBC19"] if p.threshold == 0.7
    )
    assert msnbc_07.average_degree < 8.0
