"""Multi-seed stability of the headline conclusion.

The benchmark corpora are synthetic, so the Table 3 conclusion could in
principle be an artefact of one particular world.  This experiment
regenerates the *entire* world and corpus under three different seeds
and re-runs the TENET-vs-strongest-baselines comparison: the ordering
must survive resampling the universe.
"""

from conftest import emit

from repro.baselines import KBPearlLinker, MinTreeLinker
from repro.core.linker import LinkingContext, TenetLinker
from repro.datasets.benchmarks import build_benchmark_suite
from repro.eval.runner import EvaluationRunner

SEEDS = (7, 11, 23)


def test_conclusions_stable_across_seeds(benchmark):
    def run():
        rows = {}
        for seed in SEEDS:
            suite = build_benchmark_suite(seed=seed, scale=0.5)
            context = LinkingContext.build(
                suite.world.kb, suite.world.taxonomy
            )
            runner = EvaluationRunner(
                [
                    KBPearlLinker(context),
                    MinTreeLinker(context),
                    TenetLinker(context),
                ]
            )
            per_dataset = {}
            for dataset in suite.datasets():
                per_dataset[dataset.name] = runner.evaluate(dataset)
            rows[seed] = per_dataset
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"{'seed':>5s} {'dataset':>9s} {'KBPearl':>9s} {'MINTREE':>9s} {'TENET':>9s}"
    ]
    mean_gap = []
    for seed, per_dataset in rows.items():
        for dataset, scores in per_dataset.items():
            lines.append(
                f"{seed:5d} {dataset:>9s} "
                f"{scores['KBPearl'].entity.f1:9.3f} "
                f"{scores['MINTREE'].entity.f1:9.3f} "
                f"{scores['TENET'].entity.f1:9.3f}"
            )
            best_baseline = max(
                scores["KBPearl"].entity.f1, scores["MINTREE"].entity.f1
            )
            mean_gap.append(scores["TENET"].entity.f1 - best_baseline)
    average_gap = sum(mean_gap) / len(mean_gap)
    lines.append(f"mean TENET-vs-best-baseline gap: {average_gap:+.4f}")
    emit("seed_stability", lines)

    # Across seeds and datasets, TENET is at least competitive on every
    # cell and ahead on average — the conclusion is not a one-world
    # artefact.
    for seed, per_dataset in rows.items():
        for dataset, scores in per_dataset.items():
            best = max(
                scores["KBPearl"].entity.f1, scores["MINTREE"].entity.f1
            )
            assert scores["TENET"].entity.f1 >= best - 0.03, (seed, dataset)
    assert average_gap > 0.0
