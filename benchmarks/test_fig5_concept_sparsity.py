"""Figure 5: sparsity of *concepts* (entities + predicates) per document.

Same metrics as Figure 4 over the joint concept set; only News and
T-REx42 carry predicate annotations.
"""

from conftest import emit

from repro.embeddings.similarity import SimilarityIndex
from repro.eval.sparsity import sparsity_curve


def test_fig5_concept_sparsity(bench_suite, bench_context, benchmark):
    similarity = SimilarityIndex(bench_context.embeddings)
    datasets = [bench_suite.news, bench_suite.trex42]

    def run():
        return {
            ds.name: sparsity_curve(ds, similarity, entities_only=False)
            for ds in datasets
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    thresholds = [p.threshold for p in next(iter(curves.values()))]
    lines = ["(a) density of concepts per document"]
    lines.append("dist   " + "  ".join(f"{t:.1f}" for t in thresholds))
    for name, curve in curves.items():
        lines.append(f"{name:8s}" + " ".join(f"{p.density:.2f}" for p in curve))
    lines.append("")
    lines.append("(b) average degree of concepts per document")
    for name, curve in curves.items():
        lines.append(
            f"{name:8s}" + " ".join(f"{p.average_degree:4.1f}" for p in curve)
        )
    emit("fig5_concept_sparsity", lines)

    for name, curve in curves.items():
        at_half = next(p for p in curve if p.threshold == 0.5)
        assert at_half.density < 0.6, name
        # including predicates, graphs stay sparse (the paper's point:
        # relaxing coherence is necessary for concepts, not just entities)
        assert curve[0].density <= curve[-1].density
