"""Robustness sweeps (extending the paper's robustness discussion).

Two controlled sweeps over generated corpora quantify *when* coherence
relaxation matters:

* **non-linkable fraction sweep** — as documents fill with fresh
  phrases (advertisement-style), systems that force coherence lose
  precision while TENET's margin over them widens;
* **ambiguity sweep** — as the fraction of ambiguous-alias mentions
  rises, the prior-only baseline decays sharply while TENET degrades
  gracefully.

Also runs the paired bootstrap (document-level) for the headline
TENET-vs-KBPearl comparison on News, attaching an uncertainty estimate
to Table 3's main claim.
"""

from conftest import emit

from repro.baselines import FalconLinker, QKBflyLinker
from repro.core.linker import TenetLinker
from repro.datasets.generator import DocumentGenerator, DocumentSpec
from repro.datasets.schema import Dataset
from repro.eval.runner import EvaluationRunner
from repro.eval.significance import compare_on_dataset


def _corpus(bench_suite, seed, docs=8, **spec_kwargs):
    generator = DocumentGenerator(bench_suite.world, seed=seed)
    domains = ("computer_science", "music", "business", "politics")
    documents = [
        generator.generate(
            f"sweep-{i}",
            DocumentSpec(domain=domains[i % len(domains)], **spec_kwargs),
        )
        for i in range(docs)
    ]
    return Dataset("sweep", documents, has_relation_gold=True)


def test_non_linkable_fraction_sweep(bench_suite, bench_context, benchmark):
    levels = (0, 2, 4)  # advertisement-style sentences per document

    def run():
        rows = {}
        for level in levels:
            dataset = _corpus(
                bench_suite,
                seed=500 + level,
                facts=3,
                isolated_facts=1,
                non_linkable_ad_sentences=level,
                non_linkable_noun_sentences=0,
                non_linkable_relation_sentences=0,
                filler_sentences=4,
            )
            runner = EvaluationRunner(
                [QKBflyLinker(bench_context), TenetLinker(bench_context)]
            )
            rows[level] = runner.evaluate(dataset)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'ad sentences/doc':>18s} {'QKBfly EL-F':>12s} {'TENET EL-F':>12s} {'TENET ISO-P':>12s}"]
    for level, scores in rows.items():
        lines.append(
            f"{level:18d} {scores['QKBfly'].entity.f1:12.3f} "
            f"{scores['TENET'].entity.f1:12.3f} "
            f"{scores['TENET'].isolated.precision:12.3f}"
        )
    emit("sweep_non_linkable", lines)

    # TENET leads at every contamination level and keeps isolated
    # precision high when fresh phrases dominate.
    for level, scores in rows.items():
        assert scores["TENET"].entity.f1 >= scores["QKBfly"].entity.f1 - 0.02
    assert rows[levels[-1]]["TENET"].isolated.precision > 0.6


def test_ambiguity_sweep(bench_suite, bench_context, benchmark):
    levels = (0.0, 0.4, 0.8)

    def run():
        rows = {}
        for level in levels:
            dataset = _corpus(
                bench_suite,
                seed=700 + int(level * 10),
                facts=4,
                isolated_facts=0,
                non_linkable_noun_sentences=0,
                non_linkable_relation_sentences=0,
                filler_sentences=4,
                ambiguous_alias_prob=level,
                surname_prob=level / 2,
                oov_noun_prob=0.0,
                oov_relation_prob=0.0,
            )
            runner = EvaluationRunner(
                [FalconLinker(bench_context), TenetLinker(bench_context)]
            )
            rows[level] = runner.evaluate(dataset)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'ambiguity':>10s} {'Falcon EL-F':>12s} {'TENET EL-F':>12s} {'gap':>7s}"]
    gaps = {}
    for level, scores in rows.items():
        gap = scores["TENET"].entity.f1 - scores["Falcon"].entity.f1
        gaps[level] = gap
        lines.append(
            f"{level:10.1f} {scores['Falcon'].entity.f1:12.3f} "
            f"{scores['TENET'].entity.f1:12.3f} {gap:7.3f}"
        )
    emit("sweep_ambiguity", lines)

    # the coherence advantage grows with ambiguity
    assert gaps[levels[-1]] > gaps[levels[0]]
    # and the prior-only system decays with ambiguity
    assert (
        rows[levels[-1]]["Falcon"].entity.f1
        < rows[levels[0]]["Falcon"].entity.f1
    )


def test_headline_claim_significance(bench_suite, bench_linkers, benchmark):
    """Table 3's headline (TENET > KBPearl) with paired document-level
    bootstraps: on the 16-document News analog alone (limited power) and
    pooled over all 127 documents of the suite (the powered test)."""
    from repro.datasets.schema import Dataset

    pooled = Dataset(
        "pooled",
        [d for ds in bench_suite.datasets() for d in ds.documents],
        has_relation_gold=False,
    )

    def run():
        news = compare_on_dataset(
            bench_linkers["TENET"],
            bench_linkers["KBPearl"],
            bench_suite.news,
            samples=500,
        )
        everything = compare_on_dataset(
            bench_linkers["TENET"],
            bench_linkers["KBPearl"],
            pooled,
            samples=500,
        )
        return news, everything

    news, everything = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "News only (16 documents):",
        f"  TENET EL-F: {news.f1_a:.3f}   KBPearl EL-F: {news.f1_b:.3f}",
        f"  delta: {news.delta.estimate:+.3f} "
        f"[{news.delta.low:+.3f}, {news.delta.high:+.3f}] "
        f"(p={news.p_value:.3f})",
        "All four datasets pooled (127 documents):",
        f"  TENET EL-F: {everything.f1_a:.3f}   KBPearl EL-F: {everything.f1_b:.3f}",
        f"  delta: {everything.delta.estimate:+.3f} "
        f"[{everything.delta.low:+.3f}, {everything.delta.high:+.3f}] "
        f"(p={everything.p_value:.3f})",
    ]
    emit("headline_significance", lines)

    assert news.delta.estimate > 0.0
    assert everything.delta.estimate > 0.0
    assert everything.significant
