"""Figure 6(d): sensitivity to the candidates-per-mention budget k.

The paper sweeps the average number of candidate objects per mention on
the News dataset and finds 3-4 optimal: fewer candidates starve the
coherence learning, more add noise.  We sweep k = 1..6 and require the
best F1 to land at k in {3, 4, 5} with a clear win over k = 1.
"""

from conftest import emit

from repro.core.config import TenetConfig
from repro.core.linker import TenetLinker
from repro.eval.runner import EvaluationRunner

K_VALUES = (1, 2, 3, 4, 5, 6)


def test_fig6d_parameter_sensitivity(bench_suite, bench_context, benchmark):
    def run():
        scores = {}
        for k in K_VALUES:
            linker = TenetLinker(bench_context, TenetConfig(max_candidates=k))
            runner = EvaluationRunner([linker])
            scores[k] = runner.evaluate(bench_suite.news)["TENET"].entity
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'k':>3s} {'P':>7s} {'R':>7s} {'F':>7s}"]
    for k, prf in scores.items():
        lines.append(
            f"{k:3d} {prf.precision:7.3f} {prf.recall:7.3f} {prf.f1:7.3f}"
        )
    emit("fig6d_parameter_sensitivity", lines)

    best_k = max(scores, key=lambda k: scores[k].f1)
    # Starvation below k=3 (the paper's "less candidates cannot provide
    # sufficient hints") is sharp; beyond the 3-4 sweet spot the curve
    # saturates.  (The paper's analog additionally *declines* past k=4
    # because deep Wikidata candidate lists are noisy; our synthetic
    # aliases rarely have more than a handful of owners, so the analog
    # flattens instead of declining.)
    assert best_k >= 3, f"best k was {best_k}"
    starvation_gain = scores[3].f1 - scores[1].f1
    late_gain = scores[6].f1 - scores[4].f1
    assert starvation_gain > 0.0
    assert late_gain < starvation_gain * 0.5
