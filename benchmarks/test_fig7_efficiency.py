"""Figure 7: efficiency study.

(a) runtime vs. document length (words) for TENET / QKBfly / KBPearl;
(b) runtime vs. number of mentions;
(c)-(e) TENET runtime vs. mentions / mention groups / tree-cover edges
for candidate budgets k in {2, 4, 6}.

Shape claims from the paper: KBPearl is the most sensitive to document
length and mention count (it rebuilds its document graph from raw
vectors); TENET's runtime grows roughly linearly with the amount of data
processed and saturates for k >= 4 (most mentions have 3-4 candidates).
"""

from conftest import emit

from repro.core.config import TenetConfig
from repro.core.linker import TenetLinker
from repro.datasets.generator import DocumentGenerator, DocumentSpec
from repro.eval.timing import time_linker, time_tenet_detailed

SIZES = (2, 4, 8, 16, 32)


def _documents(bench_suite):
    """Documents of geometrically increasing size."""
    generator = DocumentGenerator(bench_suite.world, seed=99)
    documents = []
    for size in SIZES:
        spec = DocumentSpec(
            domain="computer_science",
            facts=size,
            isolated_facts=max(1, size // 8),
            non_linkable_noun_sentences=1,
            non_linkable_relation_sentences=1,
            filler_sentences=size,
            pronoun_prob=0.2,
            title_facts=1,
        )
        documents.append(generator.generate(f"scale-{size}", spec))
    return documents


def test_fig7ab_runtime_vs_size(bench_suite, bench_linkers, benchmark):
    documents = _documents(bench_suite)
    systems = ["QKBfly", "KBPearl", "TENET"]

    def run():
        samples = {name: [] for name in systems}
        for document in documents:
            for name in systems:
                samples[name].append(
                    time_linker(bench_linkers[name], document.text, repeats=3)
                )
        return samples

    samples = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["(a) runtime (ms) vs. #words / (b) vs. #mentions"]
    lines.append(
        f"{'System':10s} " + " ".join(
            f"w={s.words:4d}/m={s.mentions:3d}" for s in samples["TENET"]
        )
    )
    for name in systems:
        lines.append(
            f"{name:10s} " + " ".join(
                f"{1000 * s.seconds:13.1f}" for s in samples[name]
            )
        )
    # Growth ratios anchored at the second size: the smallest document
    # runs in ~1 ms where timer noise dominates.
    ratios = {}
    for name in systems:
        base, last = samples[name][1].seconds, samples[name][-1].seconds
        ratios[name] = last / max(base, 1e-9)
        lines.append(f"growth {name} (size 2 -> 5): x{ratios[name]:.1f}")
    emit("fig7ab_runtime_vs_size", lines)

    # runtime grows with input for every system
    for name in systems:
        assert samples[name][-1].seconds > samples[name][0].seconds
    # The paper's Fig. 7(a)-(b) claims: KBPearl (per-document graph,
    # no pairwise cache) is markedly more length-sensitive than TENET,
    # whose relatedness is pre-computed and whose runtime grows roughly
    # linearly with the input.
    assert ratios["KBPearl"] > ratios["TENET"]
    words_ratio = samples["TENET"][-1].words / samples["TENET"][1].words
    assert ratios["TENET"] < words_ratio ** 1.5


def test_fig7cde_tenet_scaling(bench_suite, bench_context, benchmark):
    documents = _documents(bench_suite)
    budgets = (2, 4, 6)

    def run():
        samples = {}
        for k in budgets:
            linker = TenetLinker(bench_context, TenetConfig(max_candidates=k))
            samples[k] = [
                time_tenet_detailed(linker, document.text)
                for document in documents
            ]
        return samples

    samples = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = []
    for label, attribute in (
        ("(c) runtime (ms) vs. #mentions", "mentions"),
        ("(d) runtime (ms) vs. #mention groups", "groups"),
        ("(e) runtime (ms) vs. #tree-cover edges", "cover_edges"),
    ):
        lines.append(label)
        for k in budgets:
            row = f"  k={k}: "
            row += "  ".join(
                f"({getattr(s, attribute)}, {1000 * s.seconds:.1f})"
                for s in samples[k]
            )
            lines.append(row)
    emit("fig7cde_tenet_scaling", lines)

    # larger candidate budgets cost more, but runtime saturates by k=4:
    # most mentions have at most 3-4 candidates in the KB (paper Sec. 6.2)
    total = {k: sum(s.seconds for s in samples[k]) for k in budgets}
    assert total[4] >= total[2] * 0.8
    assert total[6] <= total[4] * 1.6
    # roughly linear scaling: doubling the input does not quadruple time
    for k in budgets:
        mentions_ratio = samples[k][-1].mentions / samples[k][0].mentions
        time_ratio = samples[k][-1].seconds / max(samples[k][0].seconds, 1e-9)
        assert time_ratio < mentions_ratio ** 2.2
