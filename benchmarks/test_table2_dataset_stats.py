"""Table 2: statistics of non-linkable phrases per dataset.

Paper reference values (fractions of non-linkable phrases):
News 21.0% nouns / 63.2% relations; KORE50 0.7% nouns (no relation
annotations); MSNBC19 15.1% nouns; T-REx42 7.3% nouns / 45.2% relations.
The analogs must reproduce the qualitative profile: News has by far the
highest non-linkable load, KORE50 nearly none, relation non-linkability
far above noun non-linkability on the annotated datasets.
"""

from conftest import emit

from repro.eval.statistics import dataset_statistics


def test_table2_dataset_statistics(bench_suite, benchmark):
    def run():
        return [dataset_statistics(d) for d in bench_suite.datasets()]

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"{'Dataset':10s} {'n./doc':>7s} {'#n.':>5s} {'nlN%':>6s} "
        f"{'re./doc':>8s} {'#re.':>5s} {'nlR%':>6s} {'w/doc':>7s}"
    ]
    for s in stats:
        rel_rate = (
            f"{s.relations_per_document:8.2f}"
            if s.relations_per_document is not None
            else f"{'N.A.':>8s}"
        )
        rel_count = (
            f"{s.relation_count:5d}" if s.relation_count is not None else f"{'N.A.':>5s}"
        )
        nl_rel = (
            f"{100 * s.non_linkable_relation_fraction:5.1f}%"
            if s.non_linkable_relation_fraction is not None
            else f"{'N.A.':>6s}"
        )
        lines.append(
            f"{s.name:10s} {s.nouns_per_document:7.2f} {s.noun_count:5d} "
            f"{100 * s.non_linkable_noun_fraction:5.1f}% "
            f"{rel_rate} {rel_count} {nl_rel} {s.words_per_document:7.1f}"
        )
    emit("table2_dataset_stats", lines)

    by_name = {s.name: s for s in stats}
    # qualitative profile of the paper's Table 2
    assert by_name["News"].non_linkable_noun_fraction > 0.12
    assert by_name["KORE50"].non_linkable_noun_fraction < 0.05
    assert (
        by_name["News"].non_linkable_relation_fraction
        > by_name["News"].non_linkable_noun_fraction
    )
    assert (
        by_name["T-REx42"].non_linkable_relation_fraction
        > by_name["T-REx42"].non_linkable_noun_fraction
    )
    assert (
        by_name["News"].non_linkable_noun_fraction
        > by_name["T-REx42"].non_linkable_noun_fraction
    )
