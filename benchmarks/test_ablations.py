"""Ablations of TENET's design choices (beyond the paper's figures).

Each ablation switches off one component called out in DESIGN.md and
measures end-to-end entity/relation linking on the News dataset (the
dataset with every phenomenon: ambiguity, isolation, fresh concepts,
relation gold):

* **canopies off** — every span is its own group; mention selection loses
  the merged-reading preference (Sec. 5.1's contribution);
* **prior calibration off** — raw 1-P local distances (no floor/curve);
  dominant priors then outrank genuine coherence (Sec. 4's min-max
  intuition);
* **weak-prior filter off** — coherence-free weak priors are linked
  instead of demoted;
* **predicate scaling off** — predicate hub similarity untreated;
* **kNN sparsification off** — the dense coherence graph; results must
  match the sparsified default (it is an efficiency device, not a quality
  trade).
"""

from conftest import emit

from repro.core.config import TenetConfig
from repro.core.linker import TenetLinker
from repro.eval.runner import EvaluationRunner

ABLATIONS = {
    "full": TenetConfig(),
    "no-canopies": TenetConfig(use_canopies=False),
    "no-prior-calibration": TenetConfig(
        prior_distance_floor=0.0, prior_distance_curve=1.0
    ),
    "no-weak-prior-filter": TenetConfig(prior_link_threshold=1.0),
    "no-predicate-scale": TenetConfig(predicate_similarity_scale=1.0),
    "dense-graph": TenetConfig(coherence_max_neighbours=None),
    "with-type-filter": TenetConfig(use_type_filter=True),
}


def test_ablations_on_news(bench_suite, bench_context, benchmark):
    def run():
        scores = {}
        for name, config in ABLATIONS.items():
            linker = TenetLinker(bench_context, config)
            runner = EvaluationRunner([linker])
            scores[name] = runner.evaluate(bench_suite.news)["TENET"]
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"{'Ablation':22s} {'EL-P':>7s} {'EL-R':>7s} {'EL-F':>7s} "
        f"{'RL-F':>7s} {'MD-F':>7s} {'ISO-P':>7s}"
    ]
    for name, system in scores.items():
        lines.append(
            f"{name:22s} {system.entity.precision:7.3f} "
            f"{system.entity.recall:7.3f} {system.entity.f1:7.3f} "
            f"{system.relation.f1:7.3f} {system.mention_detection.f1:7.3f} "
            f"{system.isolated.precision:7.3f}"
        )
    emit("ablations_news", lines)

    full = scores["full"]
    # every quality component contributes (or at worst is neutral)
    assert scores["no-prior-calibration"].entity.f1 < full.entity.f1
    assert scores["no-canopies"].mention_detection.f1 <= full.mention_detection.f1
    assert scores["no-predicate-scale"].relation.f1 <= full.relation.f1 + 0.02
    # the kNN sparsification is quality-neutral
    assert abs(scores["dense-graph"].entity.f1 - full.entity.f1) < 0.02


def test_bound_search_ablation(bench_suite, bench_context, benchmark):
    """B = |M| (the paper's setting) vs. the minimal feasible bound.

    The binary search finds a much smaller feasible B; Algorithm 1 then
    still yields a cover of cost <= 4B (Lemma 4.2), trading slack for
    sharper trees.
    """
    from repro.core.tree_cover import derive_tree_cover, minimal_feasible_bound

    linker = TenetLinker(bench_context)
    document = bench_suite.news.documents[0]

    def run():
        diagnostics = linker.link_detailed(document.text)
        coherence = diagnostics.coherence
        default_bound = float(len(coherence.mentions))
        b_star = minimal_feasible_bound(coherence, tolerance=0.05)
        tight_cover = derive_tree_cover(coherence, bound=b_star)
        return default_bound, b_star, tight_cover, diagnostics.cover

    default_bound, b_star, tight_cover, default_cover = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    lines = [
        f"default bound B=|M|     : {default_bound:.2f} "
        f"(cover cost {default_cover.cost():.2f})",
        f"minimal feasible bound  : {b_star:.2f} "
        f"(cover cost {tight_cover.cost():.2f}, 4B = {4 * b_star:.2f})",
    ]
    emit("ablation_bound_search", lines)

    assert b_star < default_bound
    assert tight_cover.cost() <= 4 * b_star + 1e-9
