"""Table 4: end-to-end relation linking on News and T-REx42.

Paper shape: only Falcon, KBPearl, EARL and TENET link relations; TENET
has the best F1 on both datasets; every system's relation linking is
weaker than its entity linking (Sec. 6.2's error analysis).
"""

from conftest import emit

from repro.eval.runner import EvaluationRunner

RELATION_SYSTEMS = ["Falcon", "KBPearl", "EARL", "TENET"]


def test_table4_relation_linking(bench_suite, bench_linkers, benchmark):
    runner = EvaluationRunner([bench_linkers[n] for n in RELATION_SYSTEMS])
    datasets = [bench_suite.news, bench_suite.trex42]

    def run():
        return {ds.name: runner.evaluate(ds) for ds in datasets}

    scores = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'System':10s} | {'News':^23s} | {'T-REx42':^23s}"]
    for system in RELATION_SYSTEMS:
        row = f"{system:10s}"
        for dataset in scores:
            prf = scores[dataset][system].relation
            row += f" | P={prf.precision:.3f} R={prf.recall:.3f} F={prf.f1:.3f}"
        lines.append(row)
    emit("table4_relation_linking", lines)

    for dataset, by_system in scores.items():
        best = max(s.relation.f1 for s in by_system.values())
        assert by_system["TENET"].relation.f1 >= best - 1e-9, dataset
        # relation linking is harder than entity linking for TENET
        assert (
            by_system["TENET"].relation.f1
            <= by_system["TENET"].entity.f1 + 0.02
        ), dataset
        # EARL's aggressive phrase normalisation caps its recall
        assert by_system["EARL"].relation.recall < 0.7, dataset
