"""Figure 6(b): entity disambiguation with gold mentions given.

Only systems with a dedicated disambiguation stage participate (the
paper excludes Falcon and EARL).  Paper shape: TENET leads on the
long-text datasets and on the highly ambiguous KORE50.
"""

from conftest import emit

from repro.eval.runner import EvaluationRunner

ED_SYSTEMS = ["QKBfly", "KBPearl", "MINTREE", "TENET"]


def test_fig6b_entity_disambiguation(bench_suite, bench_linkers, benchmark):
    runner = EvaluationRunner([bench_linkers[n] for n in ED_SYSTEMS])

    def run():
        return {
            ds.name: runner.evaluate_disambiguation(ds)
            for ds in bench_suite.datasets()
        }

    scores = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'System':10s} " + " ".join(f"{d:>9s}" for d in scores)]
    for system in ED_SYSTEMS:
        row = f"{system:10s} "
        row += " ".join(f"{scores[d][system].f1:9.3f}" for d in scores)
        lines.append(row)
    emit("fig6b_entity_disambiguation", lines)

    # TENET within epsilon of the best on the hard datasets
    for dataset in ("KORE50", "MSNBC19", "News"):
        best = max(scores[dataset][s].f1 for s in ED_SYSTEMS)
        assert scores[dataset]["TENET"].f1 >= best - 0.03, dataset
    # disambiguation with gold mentions outperforms end-to-end linking
    # for TENET on at least one long-text dataset (MD noise removed)
    assert scores["KORE50"]["TENET"].f1 > 0.6
