"""Shared fixtures for the reproduction benchmarks.

Everything expensive (world, embeddings, the full-scale corpus, the
system roster) is built once per session.  Each benchmark regenerates one
table or figure of the paper, prints it, and writes it under
``benchmarks/results/`` so the output survives pytest's capture.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

import pytest

from repro.baselines import (
    EarlLinker,
    FalconLinker,
    KBPearlLinker,
    MinTreeLinker,
    QKBflyLinker,
)
from repro.core.linker import LinkingContext, TenetLinker
from repro.datasets.benchmarks import BenchmarkSuite, build_benchmark_suite

RESULTS_DIR = Path(__file__).parent / "results"

SYSTEM_ORDER = ["Falcon", "QKBfly", "KBPearl", "EARL", "MINTREE", "TENET"]


@pytest.fixture(scope="session")
def bench_suite() -> BenchmarkSuite:
    return build_benchmark_suite(seed=7, scale=1.0)


@pytest.fixture(scope="session")
def bench_context(bench_suite) -> LinkingContext:
    return LinkingContext.build(
        bench_suite.world.kb, bench_suite.world.taxonomy
    )


@pytest.fixture(scope="session")
def bench_linkers(bench_context) -> Dict[str, object]:
    return {
        "Falcon": FalconLinker(bench_context),
        "QKBfly": QKBflyLinker(bench_context),
        "KBPearl": KBPearlLinker(bench_context),
        "EARL": EarlLinker(bench_context),
        "MINTREE": MinTreeLinker(bench_context),
        "TENET": TenetLinker(bench_context),
    }


def emit(name: str, lines) -> str:
    """Print a result block and persist it to results/<name>.txt."""
    text = "\n".join(lines)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return text


def prf_row(label: str, prf) -> str:
    return f"{label:10s} P={prf.precision:.3f} R={prf.recall:.3f} F={prf.f1:.3f}"
