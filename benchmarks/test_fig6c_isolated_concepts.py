"""Figure 6(c): detection of isolated (non-linkable) concepts.

The paper evaluates QKBfly, KBPearl and TENET on the 6 advertisement
articles of the News dataset, which are saturated with fresh phrases.
Shape: TENET achieves the best precision.
"""

from conftest import emit

from repro.eval.runner import EvaluationRunner

ISO_SYSTEMS = ["QKBfly", "KBPearl", "TENET"]


def test_fig6c_isolated_concepts(bench_suite, bench_linkers, benchmark):
    ads = bench_suite.advertisement_subset()
    runner = EvaluationRunner([bench_linkers[n] for n in ISO_SYSTEMS])

    def run():
        return runner.evaluate(ads)

    scores = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'System':10s} {'P':>7s} {'R':>7s} {'F':>7s}"]
    for system in ISO_SYSTEMS:
        prf = scores[system].isolated
        lines.append(
            f"{system:10s} {prf.precision:7.3f} {prf.recall:7.3f} {prf.f1:7.3f}"
        )
    emit("fig6c_isolated_concepts", lines)

    best = max(scores[s].isolated.precision for s in ISO_SYSTEMS)
    assert scores["TENET"].isolated.precision >= best - 1e-9
    assert scores["TENET"].isolated.precision > 0.6
