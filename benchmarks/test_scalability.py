"""Scalability of the substrate: a 4x-larger world.

The paper's implementation serves a 92M-concept KB; our defaults use a
few hundred concepts for benchmark speed.  This experiment quadruples
the world (more people, organisations and ambiguity per domain), builds
the context from scratch, and checks that linking quality and the
pre-computation-based efficiency survive the scale-up.
"""

import time

from conftest import emit

from repro.core.linker import LinkingContext, TenetLinker
from repro.datasets.benchmarks import build_news
from repro.eval.runner import EvaluationRunner
from repro.kb.synthetic import SyntheticKBConfig, build_synthetic_world


def test_larger_world(benchmark):
    config = SyntheticKBConfig(
        people_per_domain=96,
        organizations_per_domain=16,
        works_per_domain=10,
        awards_per_domain=6,
        ambiguous_person_pairs=120,
        extra_facts_per_domain=60,
        seed=7,
    )

    def run():
        t0 = time.perf_counter()
        world = build_synthetic_world(config)
        built_world = time.perf_counter() - t0

        t0 = time.perf_counter()
        context = LinkingContext.build(world.kb, world.taxonomy)
        built_context = time.perf_counter() - t0

        news = build_news(world, seed=901, scale=1.0)
        linker = TenetLinker(context)
        t0 = time.perf_counter()
        scores = EvaluationRunner([linker]).evaluate(news)["TENET"]
        linked = time.perf_counter() - t0
        return world, built_world, built_context, scores, linked, len(news)

    world, built_world, built_context, scores, linked, docs = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )

    lines = [
        f"world: {world.kb.entity_count} entities, "
        f"{world.kb.triple_count} triples "
        f"(built in {built_world * 1000:.0f} ms)",
        f"context (index + embeddings): {built_context * 1000:.0f} ms",
        f"TENET on {docs} News documents: {linked:.2f} s "
        f"({1000 * linked / docs:.0f} ms/doc)",
        f"EL P={scores.entity.precision:.3f} R={scores.entity.recall:.3f} "
        f"F={scores.entity.f1:.3f}",
    ]
    emit("scalability_large_world", lines)

    assert world.kb.entity_count > 1000
    # quality holds up under 4x more entities and ambiguity
    assert scores.entity.f1 > 0.8
    # offline preparation stays interactive; linking stays sub-second/doc
    assert built_context < 30.0
    assert linked / docs < 1.0
