"""Table 3: end-to-end entity linking P/R/F for 6 systems x 4 datasets.

Paper shape to reproduce: TENET achieves the best F1 on every dataset;
Falcon (no coherence) is the weakest overall; KBPearl is the strongest
baseline on long text; QKBfly's precision exceeds its recall on News
(conservative linking of fresh concepts).
"""

from conftest import SYSTEM_ORDER, emit

from repro.eval.runner import EvaluationRunner


def test_table3_entity_linking(bench_suite, bench_linkers, benchmark):
    runner = EvaluationRunner([bench_linkers[n] for n in SYSTEM_ORDER])

    def run():
        return {
            ds.name: runner.evaluate(ds) for ds in bench_suite.datasets()
        }

    scores = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = []
    header = f"{'System':10s}"
    for name in scores:
        header += f" | {name:^23s}"
    lines.append(header)
    for system in SYSTEM_ORDER:
        row = f"{system:10s}"
        for dataset in scores:
            prf = scores[dataset][system].entity
            row += f" | P={prf.precision:.3f} R={prf.recall:.3f} F={prf.f1:.3f}"
        lines.append(row)
    emit("table3_entity_linking", lines)

    # --- shape assertions (paper Table 3) ---
    # TENET leads (or statistically ties: surname coin-flips on the small
    # corpora can flip single mentions) on every dataset; the paired
    # bootstrap in test_robustness_sweeps.py carries the rigorous
    # significance claim for the headline comparison.
    for dataset, by_system in scores.items():
        best = max(s.entity.f1 for s in by_system.values())
        assert by_system["TENET"].entity.f1 >= best - 0.005, (
            f"TENET must lead (or tie) EL F1 on {dataset}"
        )
    # Falcon is the weakest or near-weakest system overall
    falcon_mean = sum(
        scores[d]["Falcon"].entity.f1 for d in scores
    ) / len(scores)
    tenet_mean = sum(scores[d]["TENET"].entity.f1 for d in scores) / len(scores)
    assert falcon_mean < tenet_mean - 0.1
    # QKBfly on News: precision-leaning (conservative on fresh concepts)
    news_qkb = scores["News"]["QKBfly"].entity
    assert news_qkb.precision >= news_qkb.recall
