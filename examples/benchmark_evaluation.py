"""Run the paper's end-to-end evaluation (Tables 3-4) at a chosen scale.

Run:  python examples/benchmark_evaluation.py [scale]

``scale`` (default 0.3) shrinks the benchmark corpora proportionally;
pass 1.0 for the full paper-sized run (~10 s).
"""

import sys

from repro.baselines import (
    EarlLinker,
    FalconLinker,
    KBPearlLinker,
    MinTreeLinker,
    QKBflyLinker,
)
from repro.core.linker import LinkingContext, TenetLinker
from repro.datasets import build_benchmark_suite
from repro.eval.runner import EvaluationRunner
from repro.eval.statistics import dataset_statistics


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    print(f"Building benchmark suite (scale={scale}) ...")
    suite = build_benchmark_suite(scale=scale)
    context = LinkingContext.build(suite.world.kb, suite.world.taxonomy)

    print("\nDataset statistics (Table 2 analog):")
    for dataset in suite.datasets():
        stats = dataset_statistics(dataset)
        relations = (
            f"{100 * stats.non_linkable_relation_fraction:.1f}% n.l. relations"
            if stats.non_linkable_relation_fraction is not None
            else "no relation gold"
        )
        print(
            f"  {stats.name:9s} {len(dataset):3d} docs, "
            f"{stats.words_per_document:6.1f} w/doc, "
            f"{stats.nouns_per_document:5.1f} n./doc, "
            f"{100 * stats.non_linkable_noun_fraction:4.1f}% n.l. nouns, "
            f"{relations}"
        )

    linkers = [
        FalconLinker(context),
        QKBflyLinker(context),
        KBPearlLinker(context),
        EarlLinker(context),
        MinTreeLinker(context),
        TenetLinker(context),
    ]
    runner = EvaluationRunner(linkers)

    print("\nEnd-to-end entity linking (Table 3 analog):")
    all_scores = {}
    for dataset in suite.datasets():
        all_scores[dataset.name] = runner.evaluate(dataset)
        print(f"  --- {dataset.name}")
        for name, scores in all_scores[dataset.name].items():
            prf = scores.entity
            print(
                f"    {name:8s} P={prf.precision:.3f} "
                f"R={prf.recall:.3f} F={prf.f1:.3f}"
            )

    print("\nEnd-to-end relation linking (Table 4 analog):")
    for dataset_name in ("News", "T-REx42"):
        print(f"  --- {dataset_name}")
        for name, scores in all_scores[dataset_name].items():
            prf = scores.relation
            if prf.predicted == 0:
                continue
            print(
                f"    {name:8s} P={prf.precision:.3f} "
                f"R={prf.recall:.3f} F={prf.f1:.3f}"
            )


if __name__ == "__main__":
    main()
