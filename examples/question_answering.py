"""Question answering over the KB (the Falcon/EARL scenario).

Questions are linked jointly — the relational phrase and the entity
disambiguate each other — then answered with one KB hop.

Run:  python examples/question_answering.py
"""

from repro import LinkingContext, build_synthetic_world
from repro.qa import KBQuestionAnswerer


def main() -> None:
    world = build_synthetic_world()
    kb = world.kb
    context = LinkingContext.build(kb, world.taxonomy)
    answerer = KBQuestionAnswerer(context)

    person_id = world.entities_of_type("computer_science", "person")[0]
    person = kb.get_entity(person_id)
    topic_id = next(
        t.obj
        for t in kb.triples()
        if t.subject == person_id and t.predicate == world.predicate("field")
    )
    topic = kb.get_entity(topic_id)
    born_city = next(
        (
            t.obj
            for t in kb.triples()
            if t.subject == person_id and t.predicate == world.predicate("born")
        ),
        None,
    )

    questions = [
        # anchor after the relation -> answers are subjects
        f"Who studies {topic.label}?",
        # anchor before the relation -> answers are objects
        f"{person.label} researches which topics?",
    ]
    if born_city is not None:
        questions.append(f"{person.label} was born in which city?")

    for question in questions:
        answer = answerer.answer(question)
        print(f"Q: {question}")
        if not answer.found:
            print("A: (no answer found)\n")
            continue
        anchor = kb.get_entity(answer.anchor_id).label
        predicate = kb.get_predicate(answer.predicate_id).label
        direction = "subject" if answer.anchor_is_subject else "object"
        print(
            f"   interpreted as: anchor={anchor!r} ({direction}), "
            f"predicate={predicate!r}"
        )
        print(f"A: {', '.join(answer.labels)}\n")


if __name__ == "__main__":
    main()
