"""Operating-point tuning: precision vs. recall via the link threshold.

TENET's ``prior_link_threshold`` decides how far-fetched a coherence-free
prior may be before the link is withheld.  Sweeping it traces the
precision/recall trade-off; pick the point your application needs
(KB population wants precision, annotation assistance wants recall).

Run:  python examples/threshold_tuning.py
"""

from repro.core.linker import LinkingContext
from repro.datasets import build_benchmark_suite
from repro.eval.curves import best_f1_point, threshold_curve


def main() -> None:
    suite = build_benchmark_suite(scale=0.4)
    context = LinkingContext.build(suite.world.kb, suite.world.taxonomy)

    curve = threshold_curve(
        context, suite.news, thresholds=(0.70, 0.80, 0.85, 0.90, 0.95, 1.00)
    )

    print("prior_link_threshold sweep on the News analog:\n")
    print(f"{'threshold':>10s} {'precision':>10s} {'recall':>8s} {'F1':>7s}")
    for point in curve:
        print(
            f"{point.threshold:10.2f} {point.precision:10.3f} "
            f"{point.recall:8.3f} {point.f1:7.3f}"
        )

    best = best_f1_point(curve)
    print(
        f"\nBest F1 operating point: threshold={best.threshold:.2f} "
        f"(P={best.precision:.3f}, R={best.recall:.3f}, F={best.f1:.3f})"
    )
    strictest = curve[0]
    print(
        f"Precision-leaning point: threshold={strictest.threshold:.2f} "
        f"(P={strictest.precision:.3f}, R={strictest.recall:.3f})"
    )


if __name__ == "__main__":
    main()
