"""Per-mention error analysis (the paper's Sec. 6.2, operationalised).

Classifies every gold mention's outcome under two systems and contrasts
their error profiles: a prior-only system accumulates PRIOR_BIAS errors
on ambiguous corpora, while TENET's residual errors concentrate in
alias-coverage gaps (OOV_SURFACE) that no disambiguator can fix.

Run:  python examples/error_analysis.py
"""

from repro.analysis import ErrorAnalyzer
from repro.baselines import FalconLinker
from repro.core.linker import LinkingContext, TenetLinker
from repro.datasets import build_benchmark_suite


def main() -> None:
    suite = build_benchmark_suite(scale=0.4)
    context = LinkingContext.build(suite.world.kb, suite.world.taxonomy)
    analyzer = ErrorAnalyzer(context)

    from repro.analysis import find_disagreements

    report = find_disagreements(
        TenetLinker(context), FalconLinker(context), suite.kore50
    )
    print("\n".join(report.summary_lines()))
    print()

    for linker in (FalconLinker(context), TenetLinker(context)):
        report = analyzer.analyze(linker, suite.kore50)
        print("\n".join(report.summary_lines()))
        samples = report.errors()[:4]
        if samples:
            print("  sample errors:")
            for case in samples:
                print(
                    f"    {case.surface!r} ({case.doc_id}): "
                    f"{case.diagnosis.value}, gold={case.gold_concept}, "
                    f"predicted={case.predicted_concept}"
                )
        print()


if __name__ == "__main__":
    main()
