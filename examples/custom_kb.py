"""Bring your own KB — the paper's "Mary and Max" example, hand-built.

Sec. 1 of the paper motivates joint mention detection with the document
"Mary and Max is a 2009 movie directed by Adam Elliot": knowing the
presence of Adam Elliot (director) helps deduce the correct mention
*Mary and Max* (the film) instead of two person mentions Mary and Max.

This example builds that exact world from scratch — no synthetic
generator — and shows TENET picking the merged reading.

Run:  python examples/custom_kb.py
"""

from repro import LinkingContext, TenetLinker
from repro.kb.records import EntityRecord, PredicateRecord, Triple
from repro.kb.store import KnowledgeBase


def build_kb() -> KnowledgeBase:
    kb = KnowledgeBase()
    # the film and its director
    kb.add_entity(
        EntityRecord(
            "Q1", "Mary and Max", types=("film",), popularity=40,
            description="2009 stop-motion film",
        )
    )
    kb.add_entity(
        EntityRecord(
            "Q2", "Adam Elliot", types=("person",), popularity=30,
            description="film director",
        )
    )
    # the competing person readings for the fragments
    kb.add_entity(
        EntityRecord(
            "Q3", "Mary Daly", aliases=("Mary",), types=("person",),
            popularity=80, description="a popular Mary",
        )
    )
    kb.add_entity(
        EntityRecord(
            "Q4", "Max Weber", aliases=("Max",), types=("person",),
            popularity=80, description="a popular Max",
        )
    )
    # some more of the directors' world, for coherence
    kb.add_entity(
        EntityRecord("Q5", "Melodrama Pictures", types=("company",), popularity=20)
    )
    kb.add_predicate(
        PredicateRecord(
            "P1", "director", aliases=("directed", "was directed by"),
            popularity=50,
        )
    )
    kb.add_predicate(
        PredicateRecord("P2", "production company", aliases=("was produced by",),
                        popularity=30)
    )
    kb.add_fact(Triple("Q1", "P1", "Q2"))
    kb.add_fact(Triple("Q1", "P2", "Q5"))
    return kb


def main() -> None:
    kb = build_kb()
    context = LinkingContext.build(kb)
    linker = TenetLinker(context)

    text = "Mary and Max was directed by Adam Elliot."
    print(f"Document: {text!r}\n")

    result, explanations = linker.explain(text)
    for link in result.links:
        record = (
            kb.get_entity(link.concept_id)
            if link.concept_id.startswith("Q")
            else kb.get_predicate(link.concept_id)
        )
        why = explanations[link.span].describe()
        print(f"  {link.surface!r:18s} -> {link.concept_id} ({record.label}); {why}")

    merged = result.find_entity("Mary and Max")
    assert merged is not None and merged.concept_id == "Q1", (
        "expected the merged film reading"
    )
    assert result.find_entity("Mary") is None
    assert result.find_entity("Max") is None
    print(
        "\nThe merged mention 'Mary and Max' won over the fragment "
        "readings Mary (Q3) / Max (Q4) — the paper's Sec. 1 example."
    )


if __name__ == "__main__":
    main()
