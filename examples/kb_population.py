"""KB population: turn documents into new facts (the KBPearl scenario).

A fresh document mixes facts the KB already knows, facts it does not,
and a brand-new product name; the populator confirms the former, emits
the latter, and promotes the fresh phrase to a new-entity placeholder.

Run:  python examples/kb_population.py
"""

from repro import LinkingContext, build_synthetic_world
from repro.population import KBPopulator


def main() -> None:
    world = build_synthetic_world()
    kb = world.kb
    context = LinkingContext.build(kb, world.taxonomy)
    populator = KBPopulator(context)

    person = kb.get_entity(world.entities_of_type("computer_science", "person")[0])
    known_fact = next(
        t for t in kb.triples()
        if t.subject == person.entity_id and not t.object_is_literal
    )
    predicate = kb.get_predicate(known_fact.predicate)
    known_object = kb.get_entity(known_fact.obj)

    other_person = kb.get_entity(
        world.entities_of_type("computer_science", "person")[1]
    )
    city = kb.get_entity(world.cities[0])

    text = (
        # a fact the KB already contains -> confirmation
        f"{person.label} {predicate.aliases[-1]} {known_object.label}. "
        # a fact the KB does not contain -> new fact
        f"{other_person.label} visited {city.label}. "
        # a fresh product -> new concept placeholder + new fact
        f"Glowberry Cleanse is located in {city.label}."
    )
    print("Document:")
    print(f"  {text}\n")

    result = populator.populate(text)

    def describe(triple):
        subject = (
            kb.get_entity(triple.subject).label
            if kb.has_entity(triple.subject)
            else f"[new] {triple.subject}"
        )
        pred = kb.get_predicate(triple.predicate).label
        obj = (
            kb.get_entity(triple.obj).label
            if kb.has_entity(triple.obj)
            else f"[new] {triple.obj}"
        )
        return f"({subject}, {pred}, {obj})"

    print("Confirmed facts (already in the KB):")
    for triple in result.confirmed_facts:
        print(f"  {describe(triple)}")

    print("\nNew facts:")
    for triple in result.new_facts:
        print(f"  {describe(triple)}")

    print("\nNew concepts:")
    for concept in result.new_concepts:
        print(f"  {concept.placeholder_id}: {concept.surface!r}")

    # Apply to a copy of the KB and show the growth.
    from repro.kb.dump import kb_from_json_dump, kb_to_json_dump

    target = kb_from_json_dump(kb_to_json_dump(kb))
    before = target.triple_count
    added = populator.apply(target, result)
    print(
        f"\nApplied: {added} facts added "
        f"({before} -> {target.triple_count} triples, "
        f"{target.entity_count} entities)"
    )


if __name__ == "__main__":
    main()
