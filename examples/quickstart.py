"""Quickstart: build a world, link a document, inspect the result.

Run:  python examples/quickstart.py
"""

from repro import LinkingContext, TenetLinker, build_synthetic_world


def main() -> None:
    # 1. Build the synthetic world (the offline stand-in for Wikidata)
    #    and the linking context: alias index + trained embeddings.
    world = build_synthetic_world()
    context = LinkingContext.build(world.kb, world.taxonomy)
    linker = TenetLinker(context)

    # 2. Compose a document from facts that exist in the KB, plus one
    #    fresh (non-linkable) phrase.
    kb = world.kb
    person = kb.get_entity(world.entities_of_type("computer_science", "person")[0])
    topic = kb.get_entity(world.entities_of_type("computer_science", "field")[0])
    city = kb.get_entity(world.cities[0])
    text = (
        f"{person.label} studies {topic.label}. "
        f"He was born in {city.label}. "
        f"Glowberry Cleanse is located in {city.label}."
    )
    print("Document:")
    print(f"  {text}\n")

    # 3. Link.
    result = linker.link(text)

    print("Entity links:")
    for link in result.entity_links:
        entity = kb.get_entity(link.concept_id)
        print(f"  {link.surface!r:40s} -> {link.concept_id} ({entity.label})")

    print("\nRelation links:")
    for link in result.relation_links:
        predicate = kb.get_predicate(link.concept_id)
        print(f"  {link.surface!r:40s} -> {link.concept_id} ({predicate.label})")

    print("\nNon-linkable (new) concepts:")
    for span in result.non_linkable:
        print(f"  {span.text!r}")

    # 4. Peek inside: the intermediate artefacts of the TENET pipeline.
    diagnostics = linker.link_detailed(text)
    print(
        f"\nPipeline: {diagnostics.mention_count} mentions, "
        f"{diagnostics.group_count} mention groups, "
        f"{diagnostics.cover_edge_count} tree-cover edges, "
        f"{diagnostics.elapsed_seconds * 1000:.1f} ms"
    )


if __name__ == "__main__":
    main()
