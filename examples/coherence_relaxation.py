"""Coherence relaxation in action: the paper's two headline scenarios.

1. **Ambiguity**: a shared name whose *popular* sense is wrong — document
   coherence must override the prior (the "Michael Jordan (professor)"
   case of Figure 1).
2. **Isolation**: a mention unrelated to the rest of the document — the
   popular sense is right, and forcing coherence (as global-coherence
   systems do) would be wrong (the "Brooklyn" case of Figure 1).

TENET is compared against a prior-only linker (Falcon) and a
global-coherence linker (QKBfly) on both.

Run:  python examples/coherence_relaxation.py
"""

from repro import LinkingContext, TenetLinker, build_synthetic_world
from repro.baselines import FalconLinker, QKBflyLinker
from repro.textnorm import normalize_phrase


def find_ambiguous_case(world):
    """An alias whose dominant owner is NOT the coherent reading."""
    kb = world.kb
    owners = {}
    for entity in kb.entities():
        for alias in entity.aliases:
            owners.setdefault(normalize_phrase(alias), []).append(entity)
    for alias_key, entities in owners.items():
        if len(entities) < 2:
            continue
        top = max(entities, key=lambda e: e.popularity)
        for gold in entities:
            if gold is top or "person" not in gold.types:
                continue
            field = next(
                (
                    t.obj
                    for t in kb.triples()
                    if t.subject == gold.entity_id
                    and t.predicate == world.predicate("field")
                ),
                None,
            )
            if field is None:
                continue
            surface = next(
                a for a in gold.aliases if normalize_phrase(a) == alias_key
            )
            return surface, gold, top, kb.get_entity(field)
    raise RuntimeError("no ambiguous case in this world")


def show(kb, name, result, surface):
    link = result.find_entity(surface)
    if link is None:
        print(f"  {name:8s}: (not linked)")
    else:
        print(
            f"  {name:8s}: {surface!r} -> {link.concept_id} "
            f"({kb.get_entity(link.concept_id).label}, "
            f"{kb.get_entity(link.concept_id).domain})"
        )


def main() -> None:
    world = build_synthetic_world()
    kb = world.kb
    context = LinkingContext.build(kb, world.taxonomy)
    tenet = TenetLinker(context)
    falcon = FalconLinker(context)
    qkbfly = QKBflyLinker(context)

    # ------------------------------------------------------------------
    surface, gold, top, topic = find_ambiguous_case(world)
    text = f"{surface} studies {topic.label}."
    print("Scenario 1 — ambiguity (coherence must beat popularity)")
    print(f"  Document: {text!r}")
    print(
        f"  Senses: {gold.label} ({gold.domain}, pop {gold.popularity}) "
        f"vs {top.label} ({top.domain}, pop {top.popularity})"
    )
    print(f"  Correct: {gold.entity_id} ({gold.label})")
    for name, linker in (("Falcon", falcon), ("TENET", tenet)):
        show(kb, name, linker.link(text), surface)

    # ------------------------------------------------------------------
    print("\nScenario 2 — isolation (popularity must beat forced coherence)")
    cs_person = kb.get_entity(world.entities_of_type("computer_science", "person")[0])
    cs_topic = kb.get_entity(world.entities_of_type("computer_science", "field")[0])
    music_person = kb.get_entity(world.entities_of_type("music", "person")[0])
    text = (
        f"{cs_person.label} studies {cs_topic.label}. "
        f"{music_person.label} visited Brooklyn."
    )
    print(f"  Document: {text!r}")
    print(f"  {music_person.label} is a music-domain entity, isolated here.")
    for name, linker in (("QKBfly", qkbfly), ("TENET", tenet)):
        show(kb, name, linker.link(text), music_person.label)

    # ------------------------------------------------------------------
    print("\nScenario 3 — fresh concepts (nothing to link to)")
    text = "Glowberry Cleanse dazzleboosted SnackWave."
    print(f"  Document: {text!r}")
    for name, linker in (("QKBfly", qkbfly), ("TENET", tenet)):
        result = linker.link(text)
        reported = [s.text for s in result.non_linkable]
        print(f"  {name:8s}: new concepts reported: {reported}")


if __name__ == "__main__":
    main()
